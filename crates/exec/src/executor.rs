//! The MatRox executor: parallel HMatrix-matrix multiplication over CDS.
//!
//! The executor interprets an [`EvalPlan`] (the "generated code") in four
//! phases, mirroring the specialized loops of Figure 1e:
//!
//! 1. **near phase** — the blocked loop over the dense `D` blocks,
//!    parallel over blockset groups (which by construction never write the
//!    same output rows, so no reductions/atomics are needed);
//! 2. **upward phase** — the coarsened loop over the `V` generators,
//!    sequential over coarsen levels, parallel over load-balanced sub-trees;
//! 3. **coupling phase** — the blocked loop over the `B` blocks;
//! 4. **downward phase** — the coarsened loop over the `U` generators in
//!    reverse coarsen-level order, scattering into the output.
//!
//! Each phase has a sequential fallback used (a) when code generation decided
//! the corresponding lowering is not profitable and (b) by the ablation
//! harness of Figure 5 (`CDS(seq)`, `CDS + coarsen`, `CDS + block`, ...).
//! The `peel_root` option applies the paper's low-level specialization: the
//! root-most coarsen level is executed with block-level (parallel GEMM)
//! parallelism because task-level parallelism has run out near the root.
//!
//! All intermediate state is kept in the permuted (tree) ordering so that a
//! node's rows of `W` and `Y` are contiguous; the input is permuted on entry
//! and the output is un-permuted on exit.

use matrox_codegen::EvalPlan;
use matrox_linalg::{gemm_panel, gemm_tn_slices, par_gemm_slices, Matrix};
use matrox_tree::ClusterTree;
use rayon::prelude::*;
use std::collections::HashMap;

/// Which phases run in parallel; derived from the plan's lowering decisions
/// or overridden for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Run the near loop blocked & parallel (block lowering).
    pub parallel_near: bool,
    /// Run the coupling loop blocked & parallel (block lowering, far).
    pub parallel_far: bool,
    /// Run the tree loops coarsened & parallel (coarsen lowering).
    pub parallel_tree: bool,
    /// Peel the root-most coarsen level and use parallel GEMM inside it
    /// (low-level specialization).
    pub peel_root: bool,
    /// Minimum number of work items (blockset groups, coarsen partitions) a
    /// parallel task may own; `0` means auto (the pool's own split heuristic,
    /// overridable process-wide via the `MATROX_GRAIN` env var).  Larger
    /// grains trade load balance for lower scheduling overhead — useful when
    /// groups are many and tiny.  Within a panel-blocked evaluation the
    /// grain applies to every panel's parallel loops individually.
    pub grain: usize,
    /// Width (in RHS columns) of the panels the four phases operate on; a
    /// multi-column evaluation `Y = K~ W` is processed `panel_width` columns
    /// at a time so a block's submatrix plus its input/output panels fit in
    /// L2.  `0` means auto: the `MATROX_PANEL` env var if set, otherwise
    /// [`choose_panel_width`] sized from the CDS block extents.  Results are
    /// bitwise independent of the panel width (every output column
    /// accumulates in the same order regardless of panel grouping).
    pub panel_width: usize,
}

/// Resolve the effective grain for the executor's parallel loops: an explicit
/// per-call setting wins, then the `MATROX_GRAIN` environment variable, then
/// auto (1, letting the pool's width-scaled heuristic decide).  Public so the
/// factor/solve sweeps (`matrox-factor`) honor the same knob.
pub fn effective_grain(opts: &ExecOptions) -> usize {
    if opts.grain > 0 {
        return opts.grain;
    }
    static ENV_GRAIN: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let env = *ENV_GRAIN.get_or_init(|| {
        std::env::var("MATROX_GRAIN")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0)
    });
    env.max(1)
}

impl ExecOptions {
    /// Follow the lowering decisions recorded in the plan.
    pub fn from_plan(plan: &EvalPlan) -> Self {
        ExecOptions {
            parallel_near: plan.decisions.block_near,
            parallel_far: plan.decisions.block_far,
            parallel_tree: plan.decisions.coarsen_tree,
            peel_root: plan.decisions.peel_root,
            grain: 0,
            panel_width: 0,
        }
    }

    /// Fully sequential execution over CDS (the `CDS(seq)` ablation bar).
    pub fn sequential() -> Self {
        ExecOptions {
            parallel_near: false,
            parallel_far: false,
            parallel_tree: false,
            peel_root: false,
            grain: 0,
            panel_width: 0,
        }
    }

    /// All optimizations on, regardless of the plan's thresholds.
    pub fn full() -> Self {
        ExecOptions {
            parallel_near: true,
            parallel_far: true,
            parallel_tree: true,
            peel_root: true,
            grain: 0,
            panel_width: 0,
        }
    }

    /// Set the minimum work items per parallel task (see [`ExecOptions::grain`]).
    pub fn with_grain(mut self, grain: usize) -> Self {
        self.grain = grain;
        self
    }

    /// Set the RHS panel width (see [`ExecOptions::panel_width`]).
    pub fn with_panel_width(mut self, panel_width: usize) -> Self {
        self.panel_width = panel_width;
        self
    }
}

/// Default L2 working-set budget (bytes) assumed by the automatic panel-width
/// selection: half of a typical 512 KiB per-core L2, leaving the other half
/// for the streamed CDS values and the stack.
pub const DEFAULT_L2_BYTES: usize = 256 * 1024;

/// Bounds on the automatically chosen panel width.  The lower bound keeps
/// tiny panels from multiplying the per-panel permutation/scheduling
/// overhead; the upper bound caps the panel footprint once blocks are small
/// enough that cache residency is no longer the constraint.
const PANEL_MIN: usize = 8;
const PANEL_MAX: usize = 256;

/// Choose the RHS panel width for a plan: the widest panel `q` such that the
/// largest single block any phase touches (dense near block, coupling block,
/// or generator — the CDS [`worst_block_extent`](matrox_analysis::Cds::worst_block_extent))
/// still fits in the `l2_bytes` budget together with its `q`-column input and
/// output panels.  Clamped to `[8, 256]` and rounded down to a multiple of 8.
///
/// The choice only affects performance, never results: the executor's output
/// is bitwise identical for every panel width.
pub fn choose_panel_width(plan: &EvalPlan, l2_bytes: usize) -> usize {
    let ext = plan.cds.worst_block_extent();
    if ext.is_empty() {
        return PANEL_MAX;
    }
    let f64_bytes = std::mem::size_of::<f64>();
    let block_bytes = ext.max_elems * f64_bytes;
    // Per RHS column a block multiply reads `max_cols` input rows and writes
    // `max_rows` output rows (or vice versa for the transposed upward pass).
    let per_col_bytes = (ext.max_rows + ext.max_cols) * f64_bytes;
    let budget = l2_bytes.saturating_sub(block_bytes);
    let qp = budget
        .checked_div(per_col_bytes)
        .unwrap_or(PANEL_MAX)
        .clamp(PANEL_MIN, PANEL_MAX);
    qp - qp % PANEL_MIN
}

/// Resolve the effective panel width: an explicit per-call setting wins, then
/// the `MATROX_PANEL` environment variable, then [`choose_panel_width`] with
/// the default L2 budget.
pub fn effective_panel_width(opts: &ExecOptions, plan: &EvalPlan) -> usize {
    if opts.panel_width > 0 {
        return opts.panel_width;
    }
    static ENV_PANEL: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let env = *ENV_PANEL.get_or_init(|| {
        std::env::var("MATROX_PANEL")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0)
    });
    if env > 0 {
        return env;
    }
    choose_panel_width(plan, DEFAULT_L2_BYTES)
}

/// Per-plan executor state derived once and reused across evaluations: the
/// resolved options and panel width, the leaf ordering the output-splitting
/// uses, and the distinct target nodes of every blockset group.
///
/// [`execute`] derives this on every call; an evaluation session
/// (`matrox_core::EvalSession`) builds it once next to the inspector output
/// and serves every subsequent `evaluate(W)` without re-walking the plan.
/// `plan` and `tree` passed to [`execute_prepared`] must be the ones this
/// was prepared from.
#[derive(Debug, Clone)]
pub struct PreparedExec {
    /// The options (lowerings + grain) the plan was prepared with.
    pub opts: ExecOptions,
    /// Resolved RHS panel width (see [`ExecOptions::panel_width`]).
    pub panel_width: usize,
    /// Leaves sorted by permuted start row (the output tiling order).
    leaf_order: Vec<usize>,
    /// Distinct target nodes of each near-blockset group, in first-seen
    /// entry order.
    near_targets: Vec<Vec<usize>>,
    /// Distinct target nodes of each far-blockset group.
    far_targets: Vec<Vec<usize>>,
    /// Number of tree nodes, for cheap misuse detection.
    num_nodes: usize,
}

impl PreparedExec {
    /// Derive the executor state for a plan (the "inspector side" of the
    /// executor: everything per-evaluation calls would otherwise recompute).
    pub fn new(plan: &EvalPlan, tree: &ClusterTree, opts: &ExecOptions) -> Self {
        let cds = &plan.cds;
        let mut leaf_order = tree.leaves();
        leaf_order.sort_by_key(|&l| tree.nodes[l].start);
        let distinct_targets =
            |entries: &[matrox_analysis::CdsBlockEntry], groups: &[matrox_analysis::GroupRange]| {
                groups
                    .iter()
                    .map(|g| {
                        let mut seen: Vec<usize> = Vec::new();
                        for e in &entries[g.start..g.end] {
                            if !seen.contains(&e.target) {
                                seen.push(e.target);
                            }
                        }
                        seen
                    })
                    .collect()
            };
        PreparedExec {
            opts: *opts,
            panel_width: effective_panel_width(opts, plan),
            leaf_order,
            near_targets: distinct_targets(&cds.d_entries, &cds.d_groups),
            far_targets: distinct_targets(&cds.b_entries, &cds.b_groups),
            num_nodes: tree.num_nodes(),
        }
    }
}

/// Evaluate `Y = K~ * W` using the generated plan.
///
/// `w` must have one row per point (`N x Q`); the result has the same shape.
/// This derives the per-plan [`PreparedExec`] state on every call; repeated
/// evaluations should prepare once and use [`execute_prepared`] (or the
/// session API in `matrox-core`).
pub fn execute(plan: &EvalPlan, tree: &ClusterTree, w: &Matrix, opts: &ExecOptions) -> Matrix {
    execute_prepared(plan, tree, &PreparedExec::new(plan, tree, opts), w)
}

/// Evaluate `Y = K~ * W` with previously prepared executor state, processing
/// the RHS in panels of [`PreparedExec::panel_width`] columns.
///
/// # Panics
/// Panics when `w` has the wrong number of rows or `prep` was prepared for a
/// different tree.
pub fn execute_prepared(
    plan: &EvalPlan,
    tree: &ClusterTree,
    prep: &PreparedExec,
    w: &Matrix,
) -> Matrix {
    let n = tree.perm.len();
    let q = w.cols();
    assert_eq!(w.rows(), n, "execute: W must have N = {n} rows");
    assert_eq!(
        prep.num_nodes,
        tree.num_nodes(),
        "execute: PreparedExec belongs to a different tree"
    );
    let mut y = Matrix::zeros(n, q);
    if q == 0 {
        return y;
    }
    let qp = prep.panel_width.max(1).min(q);
    // Scratch buffers shared by every panel: the gather fully overwrites the
    // active slice of `w_perm`, and `execute_panel` re-zeroes `y_perm`, so
    // one allocation serves the whole evaluation.
    let mut w_perm = vec![0.0f64; n * qp];
    let mut y_perm = vec![0.0f64; n * qp];
    let mut j0 = 0;
    while j0 < q {
        let j1 = (j0 + qp).min(q);
        let len = n * (j1 - j0);
        execute_panel(
            plan,
            tree,
            prep,
            w,
            j0,
            j1,
            &mut w_perm[..len],
            &mut y_perm[..len],
            &mut y,
        );
        j0 = j1;
    }
    y
}

/// Run the four executor phases for the RHS columns `[j0, j1)`, writing the
/// result into the same columns of `y`.  `w_perm`/`y_perm` are caller-owned
/// scratch slices of `n * (j1 - j0)` elements, reused across panels.
#[allow(clippy::too_many_arguments)]
fn execute_panel(
    plan: &EvalPlan,
    tree: &ClusterTree,
    prep: &PreparedExec,
    w: &Matrix,
    j0: usize,
    j1: usize,
    w_perm: &mut [f64],
    y_perm: &mut [f64],
    y: &mut Matrix,
) {
    let opts = &prep.opts;
    let n = tree.perm.len();
    let q = w.cols();
    let qp = j1 - j0;
    debug_assert_eq!(w_perm.len(), n * qp);
    debug_assert_eq!(y_perm.len(), n * qp);

    // Permute the panel of W into tree order so every node's rows are
    // contiguous.  The gather writes disjoint contiguous destination rows, so
    // it parallelizes over row blocks; below ~PERM_PAR_ELEMS elements the
    // copy is too memory-bound and short for a fork to pay off.
    let any_parallel = opts.parallel_near || opts.parallel_far || opts.parallel_tree;
    let perm_rows_per_task = PERM_PAR_ELEMS.div_ceil(qp).max(1);
    if any_parallel && n * qp >= PERM_PAR_ELEMS {
        w_perm
            .par_chunks_mut(qp)
            .with_min_len(perm_rows_per_task)
            .enumerate()
            .for_each(|(p, row)| row.copy_from_slice(&w.row(tree.perm[p])[j0..j1]));
    } else {
        for p in 0..n {
            w_perm[p * qp..(p + 1) * qp].copy_from_slice(&w.row(tree.perm[p])[j0..j1]);
        }
    }
    y_perm.fill(0.0);

    // Phase 1: near (dense) contributions.
    near_phase(plan, tree, prep, w_perm, y_perm, qp, opts);

    // Phase 2: upward pass producing the skeleton coefficients T.
    let t = upward_phase(plan, tree, w_perm, qp, opts);

    // Phase 3: coupling through the B blocks.
    let mut s = coupling_phase(plan, prep, &t, qp, opts);
    drop(t);

    // Phase 4: downward pass scattering U * S into the output.
    downward_phase(plan, tree, prep, &mut s, y_perm, qp, opts);

    // Un-permute the panel into the output columns.  Iterate over the
    // *destination* rows (each task owns a contiguous block of `y`) and
    // gather from the permuted buffer via the inverse permutation, so the
    // parallel copy needs no synchronization.
    if any_parallel && n * qp >= PERM_PAR_ELEMS {
        y.as_mut_slice()
            .par_chunks_mut(q)
            .with_min_len(perm_rows_per_task)
            .enumerate()
            .for_each(|(i, row)| {
                let p = tree.pos[i];
                row[j0..j1].copy_from_slice(&y_perm[p * qp..(p + 1) * qp]);
            });
    } else {
        for p in 0..n {
            y.row_mut(tree.perm[p])[j0..j1].copy_from_slice(&y_perm[p * qp..(p + 1) * qp]);
        }
    }
}

/// Element count below which the entry/exit permutation copies stay
/// sequential: the copies are pure memory traffic, so small problems gain
/// nothing from forking.
const PERM_PAR_ELEMS: usize = 64 * 1024;

/// Minimum multiply-add count for which the peeled (block-level parallel)
/// GEMM path is worthwhile; below this the sequential kernel is used even
/// when peeling is enabled, because thread fan-out costs more than it saves.
/// Retuned for the real work-stealing pool: the peeled GEMM runs while the
/// rest of the pool is idle (task parallelism has run out at the root), so a
/// fork is profitable already at ~256k multiply-adds, a quarter of the value
/// assumed under the sequential stub.
const PEEL_PAR_THRESHOLD: usize = 1 << 18;

/// Split `y_perm` into one mutable slice per leaf node (leaves tile the
/// permuted row range contiguously; `leaf_order` is the precomputed
/// start-row ordering from [`PreparedExec`]).
fn split_leaf_slices<'a>(
    tree: &ClusterTree,
    leaf_order: &[usize],
    y_perm: &'a mut [f64],
    q: usize,
) -> HashMap<usize, &'a mut [f64]> {
    let mut map = HashMap::with_capacity(leaf_order.len());
    let mut rest = y_perm;
    for &l in leaf_order {
        let len = tree.nodes[l].num_points() * q;
        let (head, tail) = rest.split_at_mut(len);
        map.insert(l, head);
        rest = tail;
    }
    map
}

// --------------------------------------------------------------------------
// Phase 1: near contributions
// --------------------------------------------------------------------------

fn near_phase(
    plan: &EvalPlan,
    tree: &ClusterTree,
    prep: &PreparedExec,
    w_perm: &[f64],
    y_perm: &mut [f64],
    q: usize,
    opts: &ExecOptions,
) {
    let cds = &plan.cds;
    if cds.d_entries.is_empty() {
        return;
    }
    if !opts.parallel_near {
        for e in &cds.d_entries {
            let tn = &tree.nodes[e.target];
            let dst = &mut y_perm[tn.start * q..tn.end * q];
            let sn = &tree.nodes[e.source];
            let src = &w_perm[sn.start * q..sn.end * q];
            gemm_panel(cds.d_block(e), e.rows, e.cols, src, q, dst);
        }
        return;
    }

    // Blocked parallel loop: hand every group exclusive ownership of the
    // output slices of its target nodes.  Algorithm 1 guarantees disjoint
    // targets across groups, so this is a partition of the output; the
    // distinct targets per group were collected once at prepare time.
    let mut leaf_slices = split_leaf_slices(tree, &prep.leaf_order, y_perm, q);
    struct GroupWork<'a> {
        start: usize,
        end: usize,
        targets: HashMap<usize, &'a mut [f64]>,
    }
    let mut works: Vec<GroupWork> = Vec::with_capacity(cds.d_groups.len());
    for (g, group_targets) in cds.d_groups.iter().zip(&prep.near_targets) {
        let mut targets = HashMap::with_capacity(group_targets.len());
        for &t in group_targets {
            let slice = leaf_slices
                .remove(&t)
                .expect("blockset groups must own disjoint target nodes");
            targets.insert(t, slice);
        }
        works.push(GroupWork {
            start: g.start,
            end: g.end,
            targets,
        });
    }
    works
        .par_iter_mut()
        .with_min_len(effective_grain(opts))
        .for_each(|work| {
            for e in &cds.d_entries[work.start..work.end] {
                let dst = work
                    .targets
                    .get_mut(&e.target)
                    .expect("entry target owned by its group");
                let sn = &tree.nodes[e.source];
                let src = &w_perm[sn.start * q..sn.end * q];
                gemm_panel(cds.d_block(e), e.rows, e.cols, src, q, dst);
            }
        });
}

// --------------------------------------------------------------------------
// Phase 2: upward pass (T = V^T * ...)
// --------------------------------------------------------------------------

fn compute_t(
    plan: &EvalPlan,
    tree: &ClusterTree,
    id: usize,
    w_perm: &[f64],
    q: usize,
    global_t: &[Matrix],
    local_t: Option<&HashMap<usize, Matrix>>,
    par_gemm: bool,
) -> Matrix {
    let cds = &plan.cds;
    let (v, rows, cols) = cds.v(id);
    if cols == 0 {
        return Matrix::zeros(0, q);
    }
    let node = &tree.nodes[id];
    let mut out = Matrix::zeros(cols, q);
    let par_gemm = par_gemm && rows * cols * q >= PEEL_PAR_THRESHOLD;
    if node.is_leaf() {
        debug_assert_eq!(rows, node.num_points());
        let src = &w_perm[node.start * q..node.end * q];
        if par_gemm {
            let vt = transpose_slice(v, rows, cols);
            par_gemm_slices(&vt, cols, rows, src, q, out.as_mut_slice());
        } else {
            gemm_tn_slices(v, rows, cols, src, q, out.as_mut_slice());
        }
    } else {
        let (l, r) = node.children.unwrap();
        let lookup = |child: usize| -> &Matrix {
            local_t
                .and_then(|m| m.get(&child))
                .unwrap_or(&global_t[child])
        };
        let tl = lookup(l);
        let tr = lookup(r);
        let rl = tl.rows();
        let rr = tr.rows();
        debug_assert_eq!(rows, rl + rr, "transfer matrix rows mismatch at node {id}");
        if rl > 0 {
            gemm_tn_slices(
                &v[0..rl * cols],
                rl,
                cols,
                tl.as_slice(),
                q,
                out.as_mut_slice(),
            );
        }
        if rr > 0 {
            gemm_tn_slices(
                &v[rl * cols..],
                rr,
                cols,
                tr.as_slice(),
                q,
                out.as_mut_slice(),
            );
        }
    }
    out
}

/// Transpose a row-major `rows x cols` slice into a new `cols x rows` buffer.
fn transpose_slice(a: &[f64], rows: usize, cols: usize) -> Vec<f64> {
    let mut t = vec![0.0; rows * cols];
    for i in 0..rows {
        for j in 0..cols {
            t[j * rows + i] = a[i * cols + j];
        }
    }
    t
}

fn upward_phase(
    plan: &EvalPlan,
    tree: &ClusterTree,
    w_perm: &[f64],
    q: usize,
    opts: &ExecOptions,
) -> Vec<Matrix> {
    let cds = &plan.cds;
    let mut t: Vec<Matrix> = cds.sranks.iter().map(|_| Matrix::zeros(0, 0)).collect();

    let use_coarsen = opts.parallel_tree && plan.coarsenset.num_levels() > 0;
    if use_coarsen {
        let levels = &plan.coarsenset.levels;
        let nlev = levels.len();
        for (cl, parts) in levels.iter().enumerate() {
            let peel_this = opts.peel_root && cl + 1 == nlev;
            if peel_this {
                // Root-most coarsen level: little task parallelism left, use
                // block-level parallelism inside each node instead.
                for part in parts {
                    for &id in part {
                        t[id] = compute_t(plan, tree, id, w_perm, q, &t, None, true);
                    }
                }
            } else {
                let results: Vec<Vec<(usize, Matrix)>> = parts
                    .par_iter()
                    .with_min_len(effective_grain(opts))
                    .map(|part| {
                        let mut local: HashMap<usize, Matrix> = HashMap::with_capacity(part.len());
                        for &id in part {
                            let ti = compute_t(plan, tree, id, w_perm, q, &t, Some(&local), false);
                            local.insert(id, ti);
                        }
                        local.into_iter().collect()
                    })
                    .collect();
                for part_result in results {
                    for (id, m) in part_result {
                        t[id] = m;
                    }
                }
            }
        }
    } else {
        // Level-by-level traversal, deepest level first.
        for level in (1..=tree.height).rev() {
            for id in tree.nodes_at_level(level) {
                if cds.sranks[id] == 0 {
                    t[id] = Matrix::zeros(0, q);
                    continue;
                }
                t[id] = compute_t(plan, tree, id, w_perm, q, &t, None, false);
            }
        }
    }
    // Normalize: nodes never touched keep a 0 x 0 matrix; give them 0 x q so
    // later phases can rely on the column count.
    for (id, m) in t.iter_mut().enumerate() {
        if m.rows() == 0 && m.cols() != q {
            *m = Matrix::zeros(0, q);
        }
        let _ = id;
    }
    t
}

// --------------------------------------------------------------------------
// Phase 3: coupling (S_i += B_{i,j} * T_j)
// --------------------------------------------------------------------------

fn coupling_phase(
    plan: &EvalPlan,
    prep: &PreparedExec,
    t: &[Matrix],
    q: usize,
    opts: &ExecOptions,
) -> Vec<Matrix> {
    let cds = &plan.cds;
    let mut s: Vec<Matrix> = cds.sranks.iter().map(|&r| Matrix::zeros(r, q)).collect();
    if cds.b_entries.is_empty() {
        return s;
    }
    if !opts.parallel_far {
        for e in &cds.b_entries {
            if e.rows == 0 || e.cols == 0 {
                continue;
            }
            let b = cds.b_block(e);
            let src = t[e.source].as_slice();
            gemm_panel(b, e.rows, e.cols, src, q, s[e.target].as_mut_slice());
        }
        return s;
    }

    // Blocked parallel loop over far groups; each group takes exclusive
    // ownership of its target nodes' S accumulators (distinct targets
    // collected once at prepare time).
    struct FarWork {
        start: usize,
        end: usize,
        targets: HashMap<usize, Matrix>,
    }
    let mut works: Vec<FarWork> = Vec::with_capacity(cds.b_groups.len());
    for (g, group_targets) in cds.b_groups.iter().zip(&prep.far_targets) {
        let mut targets = HashMap::with_capacity(group_targets.len());
        for &tgt in group_targets {
            targets.insert(tgt, std::mem::replace(&mut s[tgt], Matrix::zeros(0, 0)));
        }
        works.push(FarWork {
            start: g.start,
            end: g.end,
            targets,
        });
    }
    works
        .par_iter_mut()
        .with_min_len(effective_grain(opts))
        .for_each(|work| {
            for e in &cds.b_entries[work.start..work.end] {
                if e.rows == 0 || e.cols == 0 {
                    continue;
                }
                let b = cds.b_block(e);
                let src = t[e.source].as_slice();
                let dst = work.targets.get_mut(&e.target).unwrap();
                gemm_panel(b, e.rows, e.cols, src, q, dst.as_mut_slice());
            }
        });
    for work in works {
        for (id, m) in work.targets {
            s[id] = m;
        }
    }
    s
}

// --------------------------------------------------------------------------
// Phase 4: downward pass (Y += U * S, pushed through the transfer matrices)
// --------------------------------------------------------------------------

/// Process one node of the downward pass.
///
/// For a leaf node, `U_i * S_i` is added into `y_dst` (the leaf's contiguous
/// output rows) and an empty vector is returned.  For an internal node the
/// expanded contribution `U_i * S_i` is split between the two children and
/// returned as `(child_id, contribution)` pairs; the caller decides whether
/// each push is local to its partition or must be merged globally.
fn compute_down_contribution(
    plan: &EvalPlan,
    tree: &ClusterTree,
    id: usize,
    s_i: &Matrix,
    q: usize,
    par_gemm: bool,
    y_dst: Option<&mut [f64]>,
) -> Vec<(usize, Matrix)> {
    let cds = &plan.cds;
    let (u, rows, cols) = cds.u(id);
    if cols == 0 || s_i.rows() == 0 {
        return Vec::new();
    }
    debug_assert_eq!(s_i.rows(), cols);
    let par_gemm = par_gemm && rows * cols * q >= PEEL_PAR_THRESHOLD;
    let node = &tree.nodes[id];
    if node.is_leaf() {
        debug_assert_eq!(rows, node.num_points());
        let dst = y_dst.expect("leaf output slice must be available");
        if par_gemm {
            par_gemm_slices(u, rows, cols, s_i.as_slice(), q, dst);
        } else {
            gemm_panel(u, rows, cols, s_i.as_slice(), q, dst);
        }
        Vec::new()
    } else {
        let (l, r) = node.children.unwrap();
        let rl = cds.sranks[l];
        let rr = cds.sranks[r];
        debug_assert_eq!(rows, rl + rr);
        let mut expanded = Matrix::zeros(rows, q);
        if par_gemm {
            par_gemm_slices(u, rows, cols, s_i.as_slice(), q, expanded.as_mut_slice());
        } else {
            gemm_panel(u, rows, cols, s_i.as_slice(), q, expanded.as_mut_slice());
        }
        let mut pushes = Vec::with_capacity(2);
        if rl > 0 {
            pushes.push((l, expanded.submatrix(0, rl, 0, q)));
        }
        if rr > 0 {
            pushes.push((r, expanded.submatrix(rl, rows, 0, q)));
        }
        pushes
    }
}

/// Accumulate a downward push into an S accumulator (replacing it when the
/// accumulator is still the empty placeholder).
fn merge_push(slot: &mut Matrix, m: Matrix) {
    if slot.rows() == m.rows() && slot.cols() == m.cols() {
        slot.add_assign(&m);
    } else {
        *slot = m;
    }
}

fn downward_phase(
    plan: &EvalPlan,
    tree: &ClusterTree,
    prep: &PreparedExec,
    s: &mut [Matrix],
    y_perm: &mut [f64],
    q: usize,
    opts: &ExecOptions,
) {
    let use_coarsen = opts.parallel_tree && plan.coarsenset.num_levels() > 0;
    if !use_coarsen {
        // Sequential top-down, level by level.
        for level in 1..=tree.height {
            for id in tree.nodes_at_level(level) {
                let s_i = std::mem::replace(&mut s[id], Matrix::zeros(0, 0));
                let node = &tree.nodes[id];
                let dst = if node.is_leaf() {
                    Some(&mut y_perm[node.start * q..node.end * q])
                } else {
                    None
                };
                let pushes = compute_down_contribution(plan, tree, id, &s_i, q, false, dst);
                for (child, m) in pushes {
                    merge_push(&mut s[child], m);
                }
            }
        }
        return;
    }

    let levels = &plan.coarsenset.levels;
    let nlev = levels.len();
    for cl in (0..nlev).rev() {
        let parts = &levels[cl];
        let peel_this = opts.peel_root && cl + 1 == nlev;
        if peel_this {
            // Sequential over the few root-most nodes, parallel inside GEMMs.
            for part in parts {
                for &id in part.iter().rev() {
                    let s_i = std::mem::replace(&mut s[id], Matrix::zeros(0, 0));
                    let node = &tree.nodes[id];
                    let dst = if node.is_leaf() {
                        Some(&mut y_perm[node.start * q..node.end * q])
                    } else {
                        None
                    };
                    let pushes = compute_down_contribution(plan, tree, id, &s_i, q, true, dst);
                    for (child, m) in pushes {
                        merge_push(&mut s[child], m);
                    }
                }
            }
            continue;
        }

        // Parallel over partitions: each partition owns its nodes' S values
        // and its leaves' output slices; pushes to nodes outside the
        // partition are returned and merged sequentially.
        let mut leaf_slices = split_leaf_slices(tree, &prep.leaf_order, y_perm, q);
        struct DownWork<'a> {
            nodes: Vec<usize>,
            s_local: HashMap<usize, Matrix>,
            y_local: HashMap<usize, &'a mut [f64]>,
        }
        let mut works: Vec<DownWork> = Vec::with_capacity(parts.len());
        for part in parts {
            let mut s_local = HashMap::with_capacity(part.len());
            let mut y_local = HashMap::new();
            for &id in part {
                s_local.insert(id, std::mem::replace(&mut s[id], Matrix::zeros(0, 0)));
                if tree.nodes[id].is_leaf() {
                    if let Some(slice) = leaf_slices.remove(&id) {
                        y_local.insert(id, slice);
                    }
                }
            }
            works.push(DownWork {
                nodes: part.clone(),
                s_local,
                y_local,
            });
        }
        let all_cross: Vec<Vec<(usize, Matrix)>> = works
            .par_iter_mut()
            .with_min_len(effective_grain(opts))
            .map(|work| {
                let mut cross: Vec<(usize, Matrix)> = Vec::new();
                // Reverse post-order: parents before children.
                for idx in (0..work.nodes.len()).rev() {
                    let id = work.nodes[idx];
                    let s_i = work
                        .s_local
                        .remove(&id)
                        .unwrap_or_else(|| Matrix::zeros(0, 0));
                    let is_leaf = tree.nodes[id].is_leaf();
                    let pushes = {
                        let dst: Option<&mut [f64]> = if is_leaf {
                            work.y_local.get_mut(&id).map(|sl| &mut **sl)
                        } else {
                            None
                        };
                        compute_down_contribution(plan, tree, id, &s_i, q, false, dst)
                    };
                    for (child, m) in pushes {
                        if let Some(existing) = work.s_local.get_mut(&child) {
                            merge_push(existing, m);
                        } else {
                            cross.push((child, m));
                        }
                    }
                }
                cross
            })
            .collect();
        drop(works);
        drop(leaf_slices);
        for cross in all_cross {
            for (child, m) in cross {
                merge_push(&mut s[child], m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrox_analysis::{build_blockset, build_cds, build_coarsenset, CoarsenParams};
    use matrox_codegen::{generate_plan, CodegenParams};
    use matrox_compress::{compress, reference_evaluate, CompressionParams};
    use matrox_linalg::relative_error;
    use matrox_points::{dense_kernel_matmul, generate, DatasetId, Kernel};
    use matrox_sampling::sample_nodes_exhaustive;
    use matrox_tree::{HTree, PartitionMethod, Structure};
    use rand::SeedableRng;

    struct Fixture {
        tree: ClusterTree,
        plan: EvalPlan,
        y_ref: Matrix,
        y_exact: Matrix,
        w: Matrix,
    }

    fn fixture(dataset: DatasetId, n: usize, structure: Structure, q: usize) -> Fixture {
        let pts = generate(dataset, n, 77);
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let tree = ClusterTree::build(&pts, PartitionMethod::Auto, 32, 0);
        let htree = HTree::build(&tree, structure);
        let sampling = sample_nodes_exhaustive(&pts, &tree);
        let c = compress(
            &pts,
            &tree,
            &htree,
            &kernel,
            &sampling,
            &CompressionParams {
                bacc: 1e-7,
                max_rank: 256,
            },
        );
        let near = build_blockset(&htree.near_pairs(), tree.num_nodes(), 2);
        let far = build_blockset(&htree.far_pairs(), tree.num_nodes(), 4);
        let cs = build_coarsenset(&tree, &c.sranks, &CoarsenParams { p: 4, agg: 2 });
        let cds = build_cds(&tree, &c, &near, &far, &cs);
        let plan = generate_plan(
            near,
            far,
            cs,
            cds,
            tree.height,
            tree.leaves().len(),
            &CodegenParams::default(),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let w = Matrix::random_uniform(n, q, &mut rng);
        let y_ref = reference_evaluate(&c, &tree, &htree, &w);
        let y_exact = dense_kernel_matmul(&pts, &kernel, &w);
        Fixture {
            tree,
            plan,
            y_ref,
            y_exact,
            w,
        }
    }

    #[test]
    fn executor_matches_reference_hss() {
        let f = fixture(DatasetId::Grid, 512, Structure::Hss, 6);
        let y = execute(&f.plan, &f.tree, &f.w, &ExecOptions::from_plan(&f.plan));
        assert!(relative_error(&y, &f.y_ref) < 1e-12);
        assert!(relative_error(&y, &f.y_exact) < 1e-4);
    }

    #[test]
    fn executor_matches_reference_geometric() {
        let f = fixture(
            DatasetId::Random,
            512,
            Structure::Geometric { tau: 0.65 },
            5,
        );
        let y = execute(&f.plan, &f.tree, &f.w, &ExecOptions::from_plan(&f.plan));
        assert!(relative_error(&y, &f.y_ref) < 1e-12);
        assert!(relative_error(&y, &f.y_exact) < 1e-4);
    }

    #[test]
    fn executor_matches_reference_budget_high_dim() {
        let f = fixture(DatasetId::Susy, 512, Structure::h2b(), 4);
        let y = execute(&f.plan, &f.tree, &f.w, &ExecOptions::from_plan(&f.plan));
        assert!(relative_error(&y, &f.y_ref) < 1e-12);
        assert!(relative_error(&y, &f.y_exact) < 1e-3);
    }

    #[test]
    fn all_ablation_variants_agree() {
        let f = fixture(DatasetId::Grid, 512, Structure::Geometric { tau: 0.65 }, 3);
        let variants = [
            ExecOptions::sequential(),
            ExecOptions {
                parallel_near: true,
                ..ExecOptions::sequential()
            },
            ExecOptions {
                parallel_tree: true,
                ..ExecOptions::sequential()
            },
            ExecOptions {
                parallel_tree: true,
                peel_root: true,
                ..ExecOptions::sequential()
            },
            ExecOptions {
                parallel_near: true,
                parallel_far: true,
                ..ExecOptions::sequential()
            },
            ExecOptions::full(),
        ];
        let baseline = execute(&f.plan, &f.tree, &f.w, &variants[0]);
        for v in &variants[1..] {
            let y = execute(&f.plan, &f.tree, &f.w, v);
            assert!(
                relative_error(&y, &baseline) < 1e-12,
                "variant {v:?} diverged"
            );
        }
    }

    #[test]
    fn hss_ablations_agree_too() {
        let f = fixture(DatasetId::Unit, 512, Structure::Hss, 2);
        let seq = execute(&f.plan, &f.tree, &f.w, &ExecOptions::sequential());
        let full = execute(&f.plan, &f.tree, &f.w, &ExecOptions::full());
        assert!(relative_error(&full, &seq) < 1e-12);
    }

    /// Bitwise equality between two matrices.
    fn bitwise_eq(a: &Matrix, b: &Matrix) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn panel_width_never_changes_results() {
        let f = fixture(DatasetId::Grid, 512, Structure::Geometric { tau: 0.65 }, 33);
        let full = execute(
            &f.plan,
            &f.tree,
            &f.w,
            &ExecOptions::full().with_panel_width(usize::MAX),
        );
        for panel in [1usize, 2, 5, 8, 16, 32, 33, 100] {
            let opts = ExecOptions::full().with_panel_width(panel);
            let y = execute(&f.plan, &f.tree, &f.w, &opts);
            assert!(bitwise_eq(&y, &full), "panel width {panel} changed results");
            let seq = ExecOptions::sequential().with_panel_width(panel);
            let y_seq = execute(&f.plan, &f.tree, &f.w, &seq);
            assert!(
                bitwise_eq(&y_seq, &full),
                "sequential panel width {panel} changed results"
            );
        }
    }

    #[test]
    fn prepared_executor_matches_unprepared_and_is_reusable() {
        let f = fixture(DatasetId::Unit, 512, Structure::Hss, 7);
        let opts = ExecOptions::from_plan(&f.plan);
        let prep = PreparedExec::new(&f.plan, &f.tree, &opts);
        let direct = execute(&f.plan, &f.tree, &f.w, &opts);
        for _ in 0..3 {
            let y = execute_prepared(&f.plan, &f.tree, &prep, &f.w);
            assert!(bitwise_eq(&y, &direct));
        }
    }

    #[test]
    fn chosen_panel_width_is_bounded_and_aligned() {
        let f = fixture(DatasetId::Grid, 512, Structure::Hss, 1);
        for l2 in [16 * 1024usize, 256 * 1024, 4 * 1024 * 1024] {
            let qp = choose_panel_width(&f.plan, l2);
            assert!((8..=256).contains(&qp), "panel width {qp} out of bounds");
            assert_eq!(qp % 8, 0, "panel width {qp} not 8-aligned");
        }
        // A larger budget can never shrink the panel.
        assert!(
            choose_panel_width(&f.plan, 4 * 1024 * 1024) >= choose_panel_width(&f.plan, 64 * 1024)
        );
    }

    #[test]
    fn matvec_case_q1_works() {
        let f = fixture(
            DatasetId::Sunflower,
            384,
            Structure::Geometric { tau: 0.65 },
            1,
        );
        let y = execute(&f.plan, &f.tree, &f.w, &ExecOptions::full());
        assert!(relative_error(&y, &f.y_ref) < 1e-12);
    }
}
