//! The executor's panel loop must be allocation-free.
//!
//! `execute_prepared` allocates the output matrix plus four per-evaluation
//! scratch buffers up front; processing additional RHS panels must not
//! allocate at all (no `HashMap` rebuilds, no per-node temporaries — the
//! PR-4 follow-up this suite pins).  The test wraps the global allocator
//! with a counter and asserts that an evaluation spanning many panels
//! performs exactly as many allocations as one spanning a single panel.

use matrox_analysis::{build_blockset, build_cds_with_grain, build_coarsenset, CoarsenParams};
use matrox_codegen::{generate_plan, CodegenParams, EvalPlan};
use matrox_compress::{compress, CompressionParams};
use matrox_exec::{execute_prepared, ExecOptions, PreparedExec};
use matrox_linalg::Matrix;
use matrox_points::{generate, DatasetId, Kernel};
use matrox_sampling::sample_nodes_exhaustive;
use matrox_tree::{ClusterTree, HTree, PartitionMethod, Structure};
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with an allocation counter (allocations only;
/// deallocations are irrelevant to the invariant).
struct CountingAlloc;

// CONCURRENCY: a single Relaxed counter — allocations are counted, never
// ordered; the test reads it only at quiescent points (before/after an
// evaluation completes).
static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a counter bump — every
// GlobalAlloc obligation (layout fitting, no unwinding, pointer validity)
// is discharged by `System` itself.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: contract inherited verbatim from the `GlobalAlloc` trait.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarding the caller's layout contract verbatim.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: contract inherited verbatim from the `GlobalAlloc` trait.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarding the caller's layout contract verbatim.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: contract inherited verbatim from the `GlobalAlloc` trait.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarding the caller's pointer/layout contract verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: contract inherited verbatim from the `GlobalAlloc` trait.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarding the caller's pointer/layout contract verbatim.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn fixture(n: usize) -> (ClusterTree, EvalPlan) {
    fixture_with_grain(n, 0)
}

/// The same fixture with an explicit CDS packing grain, so the suite can
/// pin that a plan packed by the parallel inspector (grain 1: every slot a
/// separate pool job) drives the executor exactly like the auto-grain one.
fn fixture_with_grain(n: usize, grain: usize) -> (ClusterTree, EvalPlan) {
    let pts = generate(DatasetId::Grid, n, 77);
    let kernel = Kernel::Gaussian { bandwidth: 1.0 };
    let tree = ClusterTree::build(&pts, PartitionMethod::Auto, 32, 0);
    let htree = HTree::build(&tree, Structure::h2b());
    let sampling = sample_nodes_exhaustive(&pts, &tree);
    let c = compress(
        &pts,
        &tree,
        &htree,
        &kernel,
        &sampling,
        &CompressionParams {
            bacc: 1e-6,
            max_rank: 256,
            grain: 0,
        },
    );
    let near = build_blockset(&htree.near_pairs(), tree.num_nodes(), 2);
    let far = build_blockset(&htree.far_pairs(), tree.num_nodes(), 4);
    let cs = build_coarsenset(&tree, &c.sranks, &CoarsenParams { p: 4, agg: 2 });
    let cds = build_cds_with_grain(&tree, &c, &near, &far, &cs, grain);
    let plan = generate_plan(
        near,
        far,
        cs,
        cds,
        tree.height,
        tree.leaves().len(),
        &CodegenParams::default(),
    );
    (tree, plan)
}

fn rhs(n: usize, q: usize, seed: u64) -> Matrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Matrix::random_uniform(n, q, &mut rng)
}

/// Allocations performed by one `execute_prepared` call.
fn allocs_for(plan: &EvalPlan, tree: &ClusterTree, prep: &PreparedExec, w: &Matrix) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    let y = execute_prepared(plan, tree, prep, w);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(y.rows() > 0); // keep the evaluation observable
    after - before
}

fn check(opts: ExecOptions, bound_single: u64) {
    // Miri interprets the whole pipeline (compression included) ~100x
    // slower; a 2-leaf tree and two panels still drive every RawSlots
    // raw-slicing path, which is what the Miri leg is for.
    const N: usize = if cfg!(miri) { 64 } else { 256 };
    const PANEL: usize = 16;
    const PANELS_MANY: usize = if cfg!(miri) { 2 } else { 8 };
    let (tree, plan) = fixture(N);
    let prep = PreparedExec::new(&plan, &tree, &opts.with_panel_width(PANEL));
    let w_one = rhs(N, PANEL, 3); // exactly one panel
    let w_many = rhs(N, PANELS_MANY * PANEL, 4);
    // Warm up: thread-local pack buffers, lazy pool spawn, env caches.
    for _ in 0..2 {
        let _ = execute_prepared(&plan, &tree, &prep, &w_many);
    }
    let one = allocs_for(&plan, &tree, &prep, &w_one);
    let many = allocs_for(&plan, &tree, &prep, &w_many);
    assert_eq!(
        one, many,
        "processing {PANELS_MANY} panels must allocate exactly as much as \
         processing 1 (the panel loop itself must be allocation-free)"
    );
    // The up-front cost itself is tiny: output + w_perm/y_perm/t_buf/s_buf.
    assert!(
        one <= bound_single,
        "one-panel evaluation made {one} allocations (expected <= {bound_single})"
    );
}

#[test]
fn sequential_panel_loop_is_allocation_free() {
    check(ExecOptions::sequential(), 8);
}

#[test]
fn parallel_panel_loop_is_allocation_free() {
    check(ExecOptions::full(), 8);
}

/// A plan whose CDS was packed with grain 1 (every slot its own pool job —
/// the parallel inspector's worst case) must be byte-identical to the
/// auto-grain plan, and the executor prepared on it must evaluate to the
/// same bits with the same allocation count.
#[test]
fn grain_one_packed_plan_is_bitwise_identical_and_allocation_free() {
    const N: usize = if cfg!(miri) { 64 } else { 256 };
    const PANEL: usize = 16;
    let (tree, plan) = fixture(N);
    let (tree_g, plan_g) = fixture_with_grain(N, 1);
    assert_eq!(tree.perm, tree_g.perm, "packing grain perturbed the tree");
    let bits = |a: &[f64], b: &[f64]| {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    };
    assert!(
        bits(&plan.cds.gen_values, &plan_g.cds.gen_values),
        "grain-1 packing changed the generator buffer"
    );
    assert!(
        bits(&plan.cds.d_values, &plan_g.cds.d_values),
        "grain-1 packing changed the near-block buffer"
    );
    assert!(
        bits(&plan.cds.b_values, &plan_g.cds.b_values),
        "grain-1 packing changed the coupling-block buffer"
    );

    let opts = ExecOptions::full().with_panel_width(PANEL);
    let prep = PreparedExec::new(&plan, &tree, &opts);
    let prep_g = PreparedExec::new(&plan_g, &tree_g, &opts);
    let w = rhs(N, 2 * PANEL, 5);
    for _ in 0..2 {
        let _ = execute_prepared(&plan, &tree, &prep, &w);
        let _ = execute_prepared(&plan_g, &tree_g, &prep_g, &w);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    let y = execute_prepared(&plan, &tree, &prep, &w);
    let mid = ALLOCS.load(Ordering::Relaxed);
    let y_g = execute_prepared(&plan_g, &tree_g, &prep_g, &w);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(
        bits(y.as_slice(), y_g.as_slice()),
        "executor output diverged on the grain-1 packed plan"
    );
    assert_eq!(
        mid - before,
        after - mid,
        "allocation count diverged on the grain-1 packed plan"
    );
}
