//! Parallel determinism: the conflict-free-scheduling claim, pinned.
//!
//! MatRox's executor parallelizes only across disjoint output regions
//! (blockset groups own their target nodes, coarsen partitions own their
//! sub-trees), so no floating-point reduction ever changes its association
//! order with the thread count.  These tests pin that claim: the fully
//! parallel executor must match the sequential result within 1e-12 at every
//! swept pool width for all three structures, and — stronger — the parallel
//! result must be *bitwise identical* across pool widths.

use matrox_analysis::{build_blockset, build_cds, build_coarsenset, CoarsenParams};
use matrox_codegen::{generate_plan, CodegenParams, EvalPlan};
use matrox_compress::{compress, CompressionParams};
use matrox_exec::{execute, ExecOptions};
use matrox_linalg::{relative_error, Matrix};
use matrox_points::{generate, DatasetId, Kernel};
use matrox_sampling::sample_nodes_exhaustive;
use matrox_tree::{ClusterTree, HTree, PartitionMethod, Structure};
use rand::SeedableRng;

fn fixture(
    dataset: DatasetId,
    n: usize,
    structure: Structure,
    q: usize,
) -> (ClusterTree, EvalPlan, Matrix) {
    let pts = generate(dataset, n, 77);
    let kernel = Kernel::Gaussian { bandwidth: 1.0 };
    let tree = ClusterTree::build(&pts, PartitionMethod::Auto, 32, 0);
    let htree = HTree::build(&tree, structure);
    let sampling = sample_nodes_exhaustive(&pts, &tree);
    let c = compress(
        &pts,
        &tree,
        &htree,
        &kernel,
        &sampling,
        &CompressionParams {
            bacc: 1e-7,
            max_rank: 256,
            grain: 0,
        },
    );
    let near = build_blockset(&htree.near_pairs(), tree.num_nodes(), 2);
    let far = build_blockset(&htree.far_pairs(), tree.num_nodes(), 4);
    let cs = build_coarsenset(&tree, &c.sranks, &CoarsenParams { p: 4, agg: 2 });
    let cds = build_cds(&tree, &c, &near, &far, &cs);
    let plan = generate_plan(
        near,
        far,
        cs,
        cds,
        tree.height,
        tree.leaves().len(),
        &CodegenParams::default(),
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let w = Matrix::random_uniform(n, q, &mut rng);
    (tree, plan, w)
}

fn check_structure(dataset: DatasetId, structure: Structure, q: usize) {
    let (tree, plan, w) = fixture(dataset, 512, structure, q);
    let y_seq = execute(&plan, &tree, &w, &ExecOptions::sequential());

    let mut parallel_runs: Vec<Matrix> = Vec::new();
    for &nt in &[1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(nt)
            .build()
            .unwrap();
        let y = pool.install(|| execute(&plan, &tree, &w, &ExecOptions::full()));
        assert!(
            relative_error(&y, &y_seq) < 1e-12,
            "parallel executor at {nt} threads diverged from sequential"
        );
        parallel_runs.push(y);
    }

    // Conflict-free scheduling means the parallel path is not merely close
    // to sequential but independent of the pool width down to the last bit.
    for (i, y) in parallel_runs.iter().enumerate().skip(1) {
        assert_eq!(
            y.as_slice(),
            parallel_runs[0].as_slice(),
            "parallel result at {} threads is not bitwise identical to 1 thread",
            [1usize, 2, 4][i]
        );
    }
}

#[test]
fn deterministic_across_thread_counts_hss() {
    check_structure(DatasetId::Grid, Structure::Hss, 6);
}

#[test]
fn deterministic_across_thread_counts_h2b() {
    check_structure(DatasetId::Susy, Structure::h2b(), 4);
}

#[test]
fn deterministic_across_thread_counts_geometric() {
    check_structure(DatasetId::Random, Structure::Geometric { tau: 0.65 }, 5);
}

/// Every explicit kernel selection must hold the bitwise thread-width
/// invariant on its own: for a *fixed* kernel the executor's output may not
/// depend on the pool width, the grain, or the RHS panel width.  (Scalar
/// runs the portable fallback even on SIMD hosts; Avx2 degrades to scalar
/// on hosts without the features — both ways the pinned-kernel contract
/// must hold.)
#[test]
fn fixed_kernel_is_deterministic_across_threads_and_panels() {
    use matrox_linalg::KernelChoice;
    let (tree, plan, w) = fixture(DatasetId::Grid, 512, Structure::h2b(), 9);
    for kernel in [KernelChoice::Scalar, KernelChoice::Avx2] {
        let opts = ExecOptions::full().with_kernel(kernel);
        let mut runs: Vec<Matrix> = Vec::new();
        for &nt in &[1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(nt)
                .build()
                .unwrap();
            runs.push(pool.install(|| execute(&plan, &tree, &w, &opts)));
        }
        for y in &runs[1..] {
            assert_eq!(
                y.as_slice(),
                runs[0].as_slice(),
                "kernel {kernel:?}: result depends on the pool width"
            );
        }
        for panel in [1usize, 4, 32] {
            let y = execute(&plan, &tree, &w, &opts.with_panel_width(panel));
            assert_eq!(
                y.as_slice(),
                runs[0].as_slice(),
                "kernel {kernel:?}: panel width {panel} changed results"
            );
        }
        // And the sequential lowering agrees bit-for-bit with the parallel
        // one under the same kernel.
        let seq = execute(
            &plan,
            &tree,
            &w,
            &ExecOptions::sequential().with_kernel(kernel),
        );
        assert_eq!(seq.as_slice(), runs[0].as_slice());
    }
}

/// The grain knob must change scheduling only, never results.
#[test]
fn grain_settings_do_not_change_results() {
    let (tree, plan, w) = fixture(DatasetId::Grid, 512, Structure::Geometric { tau: 0.65 }, 3);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let base = pool.install(|| execute(&plan, &tree, &w, &ExecOptions::full()));
    for grain in [1usize, 2, 7, 64] {
        let y = pool.install(|| execute(&plan, &tree, &w, &ExecOptions::full().with_grain(grain)));
        assert_eq!(
            y.as_slice(),
            base.as_slice(),
            "grain {grain} changed the numerical result"
        );
    }
}
