//! Criterion bench for Figure 10: re-compressing after an accuracy change
//! with inspector-p1 reuse (MatRox) vs a full re-inspection (library
//! behaviour).

use criterion::{criterion_group, criterion_main, Criterion};
use matrox_bench::*;
use matrox_core::{inspector, inspector_p1, inspector_p2};
use matrox_points::{generate, DatasetId};
use matrox_tree::Structure;

fn bench_fig10(c: &mut Criterion) {
    let n = 1024;
    let dataset = DatasetId::Letter;
    let structure = Structure::h2b();
    let points = generate(dataset, n, 0);
    let kernel = kernel_for(dataset);
    let params = params_for(structure);
    let p1 = inspector_p1(&points, &kernel, &params).expect("bench inputs");

    let mut group = c.benchmark_group("fig10_reuse");
    group.sample_size(10);
    group.bench_function("accuracy_change_with_reuse_p2_only", |b| {
        b.iter(|| inspector_p2(&points, &p1, &kernel, 1e-4).expect("bench inputs"))
    });
    group.bench_function("accuracy_change_full_reinspection", |b| {
        b.iter(|| inspector(&points, &kernel, &params.with_bacc(1e-4)).expect("bench inputs"))
    });
    group.bench_function("kernel_change_with_reuse_p2_only", |b| {
        b.iter(|| {
            inspector_p2(
                &points,
                &p1,
                &matrox_points::Kernel::Laplace { bandwidth: 5.0 },
                1e-5,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
