//! Criterion bench for Figure 4: overall (inspector + executor) time of
//! MatRox vs the GOFMM-style baseline as Q grows, plus inspector-only and
//! executor-only measurements so the amortization effect is visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matrox_bench::*;
use matrox_points::{generate, DatasetId};
use matrox_tree::Structure;

fn bench_fig4(c: &mut Criterion) {
    let n = 1024;
    let dataset = DatasetId::Susy;
    let points = generate(dataset, n, 0);
    let structure = Structure::h2b();

    let mut group = c.benchmark_group("fig4_overall");
    group.sample_size(10);

    // Inspector cost (paid once, independent of Q).
    group.bench_function("matrox_inspector", |b| {
        b.iter(|| build_hmatrix(dataset, n, structure, 1e-5).expect("build").1)
    });
    group.bench_function("gofmm_compression", |b| {
        b.iter(|| build_baseline(&points, dataset, structure, 1e-5).compression)
    });

    // Executor cost for growing Q (this is what amortizes the inspector).
    let (_, h) = build_hmatrix(dataset, n, structure, 1e-5).expect("build");
    let setup = build_baseline(&points, dataset, structure, 1e-5);
    for q in [1usize, 64, 256] {
        let w = random_w(n, q, q as u64);
        group.bench_with_input(BenchmarkId::new("matrox_executor", q), &q, |b, _| {
            b.iter(|| h.matmul(&w))
        });
        group.bench_with_input(BenchmarkId::new("gofmm_evaluation", q), &q, |b, _| {
            b.iter(|| gofmm_evaluate(&setup, &w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
