//! Criterion bench for Figure 5: the executor ablation (CDS sequential, then
//! adding coarsen, block, and low-level optimizations) against the
//! GOFMM-style tree-based evaluation, for one HSS and one H²-b configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use matrox_baselines::GofmmEvaluator;
use matrox_bench::*;
use matrox_exec::ExecOptions;
use matrox_points::{generate, DatasetId};
use matrox_tree::Structure;

fn bench_structure(c: &mut Criterion, dataset: DatasetId, structure: Structure, label: &str) {
    let n = 1024;
    let q = 128;
    let points = generate(dataset, n, 0);
    let (_, h) = build_hmatrix(dataset, n, structure, 1e-5).expect("build");
    let setup = build_baseline(&points, dataset, structure, 1e-5);
    let gofmm = GofmmEvaluator::new(&setup.tree, &setup.htree, &setup.compression);
    let w = random_w(n, q, 3);

    let mut group = c.benchmark_group(format!("fig5_executor_{label}"));
    group.sample_size(10);
    let seq = ExecOptions::sequential();
    group.bench_function("cds_seq", |b| b.iter(|| h.matmul_with(&w, &seq)));
    let coarsen = ExecOptions {
        parallel_tree: true,
        ..seq
    };
    group.bench_function("cds_coarsen", |b| b.iter(|| h.matmul_with(&w, &coarsen)));
    let block = ExecOptions {
        parallel_near: true,
        parallel_far: true,
        parallel_tree: true,
        ..seq
    };
    group.bench_function("cds_block_coarsen", |b| {
        b.iter(|| h.matmul_with(&w, &block))
    });
    group.bench_function("cds_full_lowlevel", |b| {
        b.iter(|| h.matmul_with(&w, &ExecOptions::full()))
    });
    group.bench_function("gofmm_tb_seq", |b| b.iter(|| gofmm.evaluate_sequential(&w)));
    group.bench_function("gofmm_tb_ds", |b| b.iter(|| gofmm.evaluate(&w)));
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    bench_structure(c, DatasetId::Unit, Structure::Hss, "hss_unit");
    bench_structure(c, DatasetId::Covtype, Structure::h2b(), "h2b_covtype");
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
