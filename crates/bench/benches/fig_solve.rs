//! Criterion bench for the solve scenario: ULV factorization and the
//! forward/backward sweeps on an HSS-compressed SPD Gaussian kernel matrix,
//! against the dense Cholesky baseline built from the same kernels.
//! Compiled by `cargo bench --no-run` on every CI run so the solve path can
//! never bit-rot.

use criterion::{criterion_group, criterion_main, Criterion};
use matrox_baselines::DenseCholeskyBaseline;
use matrox_bench::{random_w, solve_setting};
use matrox_core::inspector;
use matrox_points::{generate, DatasetId};

fn bench_solve(c: &mut Criterion) {
    let n = 1024;
    let q = 16;
    let points = generate(DatasetId::Grid, n, 0);
    let (kernel, params) = solve_setting(n, 1e-7);
    let h = inspector(&points, &kernel, &params).expect("bench inputs");
    let fh = h.factorize().expect("HSS SPD matrix must factor");
    let b1: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) * 0.3).collect();
    let bq = random_w(n, q, 5);

    let mut group = c.benchmark_group("fig_solve");
    group.sample_size(10);
    group.bench_function("ulv_factor", |b| b.iter(|| h.factorize().expect("factor")));
    group.bench_function("ulv_solve_q1", |b| b.iter(|| fh.solve(&b1).expect("solve")));
    group.bench_function("ulv_solve_q16", |b| {
        b.iter(|| fh.solve_matrix(&bq).expect("solve"))
    });
    group.bench_function("dense_cholesky_factor", |b| {
        b.iter(|| DenseCholeskyBaseline::new(&points, &kernel).expect("SPD"))
    });
    let dense = DenseCholeskyBaseline::new(&points, &kernel).expect("SPD");
    group.bench_function("dense_cholesky_solve_q1", |b| b.iter(|| dense.solve(&b1)));
    group.finish();
}

criterion_group!(benches, bench_solve);
criterion_main!(benches);
