//! Criterion bench for Figure 7: executor strong scaling across thread
//! counts, MatRox vs the GOFMM-style baseline.
//!
//! Prints the pool self-check (observed width + trivial-region speedup)
//! before measuring, so a host where the sweep cannot scale is flagged in
//! the bench output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matrox_baselines::GofmmEvaluator;
use matrox_bench::*;
use matrox_points::{generate, DatasetId};
use matrox_tree::Structure;

fn bench_fig7(c: &mut Criterion) {
    println!("{}", pool_self_check().expect("pool self-check").report());
    let n = 2048;
    let q = 128;
    let dataset = DatasetId::Covtype;
    let structure = Structure::h2b();
    let points = generate(dataset, n, 0);
    let (_, h) = build_hmatrix(dataset, n, structure, 1e-5).expect("build");
    let setup = build_baseline(&points, dataset, structure, 1e-5);
    let w = random_w(n, q, 11);

    let max_threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4);
    let mut threads = vec![1usize, 2, 4];
    threads.retain(|&t| t <= max_threads);
    if !threads.contains(&max_threads) {
        threads.push(max_threads);
    }

    let mut group = c.benchmark_group("fig7_scalability");
    group.sample_size(10);
    for &nt in &threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(nt)
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::new("matrox", nt), &nt, |b, _| {
            b.iter(|| pool.install(|| h.matmul(&w)))
        });
        group.bench_with_input(BenchmarkId::new("gofmm", nt), &nt, |b, _| {
            b.iter(|| {
                pool.install(|| {
                    GofmmEvaluator::new(&setup.tree, &setup.htree, &setup.compression).evaluate(&w)
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
