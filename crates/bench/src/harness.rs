//! Shared harness plumbing: argument parsing, the pool self-check banner,
//! and the hand-rolled JSON writing/reading helpers every `BENCH_*.json`
//! emitter (and the `perf_smoke` gate) uses.
//!
//! The fig binaries used to hand-roll all three; they are hoisted here so a
//! new harness is a `main` over measurements, not another copy of the
//! scaffolding.

use crate::{pool_self_check, PoolSelfCheck};
use matrox_core::MatroxError;
use matrox_points::DatasetId;

/// Parsed `--n`, `--q`, `--datasets` overrides plus the raw argument list
/// for harness-specific flags (see [`HarnessArgs::usize_flag`]).
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Number of points per dataset.
    pub n: usize,
    /// Number of right-hand-side columns.
    pub q: usize,
    /// Datasets to run (paper names); empty = harness default.
    pub datasets: Vec<DatasetId>,
    /// The raw process arguments, for additional `--flag value` lookups.
    raw: Vec<String>,
}

impl HarnessArgs {
    /// Parse the process arguments, falling back to the given defaults.
    pub fn parse(default_n: usize, default_q: usize) -> Self {
        Self::parse_from(std::env::args().collect(), default_n, default_q)
    }

    /// [`parse`](HarnessArgs::parse) over an explicit argument list
    /// (testable entry).
    pub fn parse_from(raw: Vec<String>, default_n: usize, default_q: usize) -> Self {
        let mut out = HarnessArgs {
            n: default_n,
            q: default_q,
            datasets: Vec::new(),
            raw,
        };
        if let Some(list) = out.str_flag("--datasets") {
            out.datasets = list.split(',').filter_map(DatasetId::from_name).collect();
        }
        out.n = out.usize_flag("--n", out.n);
        out.q = out.usize_flag("--q", out.q);
        out
    }

    /// Value of `flag` parsed as `usize`, or `default` when absent/invalid.
    pub fn usize_flag(&self, flag: &str, default: usize) -> usize {
        self.str_flag(flag)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Raw string value following `flag`, when present.
    pub fn str_flag(&self, flag: &str) -> Option<String> {
        self.raw
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.raw.get(i + 1))
            .cloned()
    }
}

/// Run the pool self-check and print the standard harness banner (observed
/// width, 1-vs-N timing, and the oversubscription warning when parallel
/// speedup is absent despite configured threads).  Returns the check so
/// harnesses can embed it in their JSON output.
///
/// # Errors
/// Propagates [`pool_self_check`]'s pool-construction failure.
pub fn pool_banner() -> Result<PoolSelfCheck, MatroxError> {
    let check = pool_self_check()?;
    println!("{}", check.report());
    if check.speedup < 1.1 && check.configured_threads > 1 {
        println!(
            "warning: parallel speedup not observed despite {} configured threads; \
             speedup columns below will understate scalability (oversubscribed host?)",
            check.configured_threads
        );
    }
    Ok(check)
}

/// Render the self-check as the standard `"self_check"` JSON object value.
pub fn self_check_json(check: &PoolSelfCheck) -> String {
    format!(
        "{{\"configured_threads\": {}, \"observed_width\": {}, \"t1_s\": {}, \
         \"tn_s\": {}, \"speedup\": {}}}",
        check.configured_threads,
        check.observed_width,
        json_f64(check.t1),
        json_f64(check.tn),
        json_f64(check.speedup)
    )
}

/// Format a float for the hand-rolled JSON (no serde in the offline vendor
/// set): finite values in scientific notation, everything else `null`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6e}")
    } else {
        "null".to_string()
    }
}

/// Format an optional float (`None` -> `null`).
pub fn json_opt(v: Option<f64>) -> String {
    v.map(json_f64).unwrap_or_else(|| "null".to_string())
}

/// Write a `BENCH_*.json` payload, printing the standard wrote/failed line.
pub fn write_bench_json(path: &str, json: &str) {
    match std::fs::write(path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}

/// Look up the first occurrence of `"key":` in a JSON document and parse the
/// value that follows as a number.  The `BENCH_*.json` / `thresholds.json`
/// schemas keep gate-relevant keys unique, which is all this reader (a
/// stand-in for a JSON parser — the vendor set has no serde) needs.
pub fn json_lookup_number(doc: &str, key: &str) -> Option<f64> {
    let token = json_lookup_token(doc, key)?;
    token.parse::<f64>().ok()
}

/// Like [`json_lookup_number`] but for `true`/`false` values.
pub fn json_lookup_bool(doc: &str, key: &str) -> Option<bool> {
    match json_lookup_token(doc, key)?.as_str() {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

fn json_lookup_token(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c == ']' || c.is_whitespace())
        .unwrap_or(rest.len());
    let token = &rest[..end];
    if token.is_empty() {
        None
    } else {
        Some(token.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> HarnessArgs {
        let mut raw = vec!["bin".to_string()];
        raw.extend(list.iter().map(|s| s.to_string()));
        HarnessArgs::parse_from(raw, 1000, 50)
    }

    #[test]
    fn flags_override_defaults_and_extras_are_reachable() {
        let a = args(&["--n", "256", "--q", "8", "--dense-max", "512"]);
        assert_eq!(a.n, 256);
        assert_eq!(a.q, 8);
        assert_eq!(a.usize_flag("--dense-max", 2048), 512);
        assert_eq!(a.usize_flag("--missing", 7), 7);
        let d = args(&["--datasets", "grid,unit"]);
        assert_eq!(d.datasets.len(), 2);
        let none = args(&[]);
        assert_eq!((none.n, none.q), (1000, 50));
        assert!(none.datasets.is_empty());
    }

    #[test]
    fn json_lookup_reads_what_json_f64_writes() {
        let doc = format!(
            "{{\n  \"speedup\": {},\n  \"count\": 42,\n  \"ok\": true,\n  \"bad\": null\n}}\n",
            json_f64(3.25)
        );
        assert!((json_lookup_number(&doc, "speedup").unwrap() - 3.25).abs() < 1e-12);
        assert_eq!(json_lookup_number(&doc, "count"), Some(42.0));
        assert_eq!(json_lookup_bool(&doc, "ok"), Some(true));
        assert_eq!(json_lookup_number(&doc, "bad"), None);
        assert_eq!(json_lookup_number(&doc, "absent"), None);
    }
}
