//! # matrox-bench
//!
//! Shared infrastructure for the benchmark harnesses that regenerate every
//! table and figure of the MatRox paper's evaluation (Section 4 and 5).
//!
//! Each experiment has a binary harness (`cargo run -p matrox-bench --release
//! --bin figN`) that prints the same rows/series the paper reports, and the
//! most time-sensitive experiments additionally have Criterion benches under
//! `benches/`.  Absolute numbers differ from the paper (different machine, no
//! MKL, scaled-down N — see DESIGN.md substitutions S1/S2/S6); the harnesses
//! are about reproducing the *shape* of each result.

#![forbid(unsafe_code)]

pub mod harness;

use matrox_baselines::GofmmEvaluator;
use matrox_cachesim::Trace;
use matrox_codegen::EvalPlan;
use matrox_compress::{compress, Compression, CompressionParams};
use matrox_core::{inspector, inspector_p1, inspector_p2, HMatrix, MatRoxParams, MatroxError};
use matrox_linalg::Matrix;
use matrox_points::{generate, DatasetId, Kernel, PointSet};
use matrox_sampling::sample_nodes;
use matrox_tree::{ClusterTree, HTree, Structure};
use rayon::prelude::*;
use std::collections::HashSet;
// CONCURRENCY: the pool self-check observes which OS threads execute a
// parallel region by collecting thread ids into a Mutex'd set — measurement
// plumbing on a cold path, not part of any measured loop.
use std::sync::Mutex;
use std::time::Instant;

pub use harness::{
    json_f64, json_lookup_bool, json_lookup_number, json_opt, pool_banner, self_check_json,
    write_bench_json, HarnessArgs,
};

/// Default problem size used by the harnesses (scaled down from the paper's
/// 10k–100k so that exact reference products stay tractable).
pub const DEFAULT_N: usize = 2048;

/// Default number of right-hand-side columns, scaled down from the paper's
/// Q = 2K in the same proportion as N.
pub const DEFAULT_Q: usize = 256;

/// The kernel the paper uses for a dataset: Gaussian (bandwidth 5) for the
/// machine-learning sets, the SMASH inverse-distance kernel for the
/// scientific sets.
pub fn kernel_for(dataset: DatasetId) -> Kernel {
    if dataset.is_scientific() {
        Kernel::smash_default()
    } else {
        Kernel::Gaussian { bandwidth: 5.0 }
    }
}

/// MatRox parameters for a structure with the paper's defaults.
pub fn params_for(structure: Structure) -> MatRoxParams {
    MatRoxParams {
        structure,
        ..MatRoxParams::default()
    }
}

/// The canonical *solve* scenario setting shared by the `fig_solve`
/// harness, the criterion bench and the acceptance tests: a kernel-ridge
/// Gaussian matrix `K + lambda I` over the 2-d grid, compressed with HSS.
///
/// The knobs balance two opposing pressures (measured in BENCH_solve.json):
/// the bandwidth must be large enough relative to the grid spacing
/// (`8x`) that the sampled interpolative decompositions capture the far
/// field accurately, while the ridge (`lambda = 32`) keeps the otherwise
/// numerically rank-deficient Gaussian matrix SPD with margin — exactly the
/// kernel-ridge-regression workload structured solvers target.  The enlarged
/// sampling size (256) buys roughly an order of magnitude of end-to-end
/// residual over the matmul default of 32.  With `bacc = 1e-7` this setting
/// achieves a relative residual around `1e-7` at `N = 4096`.
pub fn solve_setting(n: usize, bacc: f64) -> (Kernel, MatRoxParams) {
    let spacing = 1.0 / (n as f64).sqrt();
    let kernel = Kernel::GaussianRidge {
        bandwidth: 8.0 * spacing,
        ridge: 32.0,
    };
    let mut params = params_for(Structure::Hss).with_bacc(bacc);
    params.sampling.sampling_size = 256;
    params.sampling.uniform_samples = 256;
    (kernel, params)
}

/// Doubling size sweep `start, 2*start, 4*start, ...` capped at `cap`.
/// Total for every input: a cap below the start yields `[cap]` (run the
/// size the caller asked for rather than a larger one), and zeros are
/// clamped to 1 — the result is never empty, so sweep loops can use
/// `sweep.last()` without a panic path.
pub fn doubling_sweep(start: usize, cap: usize) -> Vec<usize> {
    let start = start.max(1);
    let cap = cap.max(1);
    if cap < start {
        return vec![cap];
    }
    let mut ns = vec![start];
    let mut next = start.checked_mul(2);
    while let Some(v) = next {
        if v > cap {
            break;
        }
        ns.push(v);
        next = v.checked_mul(2);
    }
    ns
}

/// Generate a dataset and compress it with MatRox, returning both.
///
/// # Errors
/// Propagates the inspector's [`MatroxError`] (bad points/parameters).
pub fn build_hmatrix(
    dataset: DatasetId,
    n: usize,
    structure: Structure,
    bacc: f64,
) -> Result<(PointSet, HMatrix), MatroxError> {
    let points = generate(dataset, n, 0);
    let kernel = kernel_for(dataset);
    let params = params_for(structure).with_bacc(bacc);
    let h = inspector(&points, &kernel, &params)?;
    Ok((points, h))
}

/// Everything the tree-based baselines need, built from the same settings the
/// MatRox pipeline uses.
pub struct BaselineSetup {
    /// Cluster tree shared by the baselines.
    pub tree: ClusterTree,
    /// HTree for the requested structure.
    pub htree: HTree,
    /// Compression output in tree-based (per-block) storage.
    pub compression: Compression,
    /// Wall-clock time of the compression (the baselines' "compression" bar).
    pub compression_time: f64,
}

/// Build the tree-based compression used by the GOFMM/STRUMPACK/SMASH
/// baselines.
pub fn build_baseline(
    points: &PointSet,
    dataset: DatasetId,
    structure: Structure,
    bacc: f64,
) -> BaselineSetup {
    let kernel = kernel_for(dataset);
    let params = params_for(structure);
    let t0 = Instant::now();
    let tree = ClusterTree::build(points, params.partition, params.leaf_size, params.seed);
    let htree = HTree::build(&tree, structure);
    let sampling = sample_nodes(points, &tree, &kernel, &params.sampling);
    let compression = compress(
        points,
        &tree,
        &htree,
        &kernel,
        &sampling,
        &CompressionParams {
            bacc,
            max_rank: params.max_rank,
            grain: params.grain,
        },
    );
    BaselineSetup {
        tree,
        htree,
        compression,
        compression_time: t0.elapsed().as_secs_f64(),
    }
}

/// Result of [`pool_self_check`]: what the thread pool actually delivered at
/// harness start, measured rather than assumed.
#[derive(Debug, Clone)]
pub struct PoolSelfCheck {
    /// Worker threads the swept pools are configured with (host parallelism).
    pub configured_threads: usize,
    /// Distinct worker threads observed executing tasks of a trivially
    /// parallel region on a `configured_threads`-wide pool.
    pub observed_width: usize,
    /// Wall-clock of the calibration region on a 1-thread pool (seconds).
    pub t1: f64,
    /// Wall-clock of the same region on the full-width pool (seconds).
    pub tn: f64,
    /// `t1 / tn`; ~1.0 on a single-core host, >1 wherever the OS can
    /// actually schedule the workers concurrently.
    pub speedup: f64,
}

impl PoolSelfCheck {
    /// One-line human-readable report for harness headers.
    pub fn report(&self) -> String {
        format!(
            "pool self-check: observed {} worker thread(s) on a {}-thread pool; \
             trivially parallel region: {:.1} ms at 1 thread, {:.1} ms at {} \
             ({:.2}x observed speedup)",
            self.observed_width,
            self.configured_threads,
            self.t1 * 1e3,
            self.tn * 1e3,
            self.configured_threads,
            self.speedup
        )
    }
}

/// CPU-bound calibration task: a deterministic float recurrence the
/// optimizer cannot fold away (result is consumed via `black_box`).
fn calibration_task(seed: usize) -> f64 {
    let mut x = 1.0 + seed as f64 * 1e-3;
    for _ in 0..200_000 {
        x = (x * 1.000000001 + 1e-9).min(2.0);
    }
    std::hint::black_box(x)
}

/// Measure what the thread pool actually does: run a trivially parallel
/// region on a 1-thread pool and on a host-width pool, report the observed
/// pool width and speedup.  This replaces the old hard-coded "the vendored
/// rayon stub is sequential" banners — the harness now *checks* instead of
/// asserting a stale fact.
///
/// # Errors
/// [`MatroxError::PoolPanic`] when the calibration pools cannot be built
/// (thread spawn refused by the OS).
pub fn pool_self_check() -> Result<PoolSelfCheck, MatroxError> {
    let configured = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let tasks = configured * 8;

    let pool = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| {
                MatroxError::PoolPanic(format!(
                    "self-check: failed to build {threads}-thread pool: {e}"
                ))
            })
    };
    let pool_n = pool(configured)?;
    let pool_1 = pool(1)?;

    // Observed width: collect the distinct worker thread ids that execute
    // the region's tasks.  With 8 items per worker the bridge's default
    // grain (~4 pieces per worker) yields ~4 leaf tasks per worker — several
    // times the pool width, so every worker has something to steal.
    let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
    pool_n.install(|| {
        (0..tasks).into_par_iter().for_each(|i| {
            ids.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(std::thread::current().id());
            std::hint::black_box(calibration_task(i));
        });
    });
    let observed_width = ids
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .len();

    let region = |pool: &rayon::ThreadPool| {
        time_best(
            || {
                pool.install(|| {
                    (0..tasks)
                        .into_par_iter()
                        .map(calibration_task)
                        .sum::<f64>()
                })
            },
            3,
        )
        .1
    };
    let t1 = region(&pool_1);
    let tn = region(&pool_n);
    Ok(PoolSelfCheck {
        configured_threads: configured,
        observed_width,
        t1,
        tn,
        speedup: if tn > 0.0 { t1 / tn } else { 1.0 },
    })
}

/// Time a closure, returning `(result, seconds)` for the best of `reps` runs.
pub fn time_best<T, F: FnMut() -> T>(mut f: F, reps: usize) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = f();
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (out, best)
}

/// GFLOP/s given a flop count and seconds.
pub fn gflops(flops: u64, secs: f64) -> f64 {
    if secs <= 0.0 {
        0.0
    } else {
        flops as f64 / secs / 1e9
    }
}

/// A random `n x q` right-hand-side matrix (the paper multiplies the HMatrix
/// with a randomly generated dense W).
pub fn random_w(n: usize, q: usize, seed: u64) -> Matrix {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    Matrix::random_uniform(n, q, &mut rng)
}

/// Evaluate the GOFMM-style baseline once (parallel, dynamic scheduling).
pub fn gofmm_evaluate(setup: &BaselineSetup, w: &Matrix) -> Matrix {
    GofmmEvaluator::new(&setup.tree, &setup.htree, &setup.compression).evaluate(w)
}

/// Build the memory-access trace of the panel-blocked executor: the CDS
/// buffers and the permuted W/Y panels are visited in the order the four
/// phases touch them, once per RHS panel of `panel_width` columns
/// (`panel_width >= q` reproduces the unblocked full-Q walk).
///
/// Used to validate the automatically chosen panel width with the cachesim
/// model (DESIGN.md): the chosen width's replayed miss ratios must not be
/// worse than the full-Q walk's.
pub fn executor_panel_trace(
    plan: &EvalPlan,
    tree: &ClusterTree,
    q: usize,
    panel_width: usize,
) -> Trace {
    const F64: usize = std::mem::size_of::<f64>();
    let cds = &plan.cds;
    let mut t = Trace::new();
    // Synthetic contiguous layout: [d_values | gen_values | b_values | W | Y].
    let d_base = 0u64;
    let gen_base = d_base + (cds.d_values.len() * F64) as u64;
    let b_base = gen_base + (cds.gen_values.len() * F64) as u64;
    let w_base = b_base + (cds.b_values.len() * F64) as u64;
    let n = tree.perm.len();
    let y_base = w_base + (n * q * F64) as u64;

    let qp = panel_width.clamp(1, q.max(1));
    let mut j0 = 0;
    while j0 < q {
        let width = qp.min(q - j0);
        // Near phase: D blocks in CDS order plus the W/Y panel rows they
        // touch (panel rows are contiguous per node in the permuted buffer).
        for e in &cds.d_entries {
            t.record(d_base + (e.offset * F64) as u64, e.rows * e.cols * F64);
            let sn = &tree.nodes[e.source];
            let tn = &tree.nodes[e.target];
            t.record(
                w_base + ((sn.start * q + j0 * sn.num_points()) * F64) as u64,
                sn.num_points() * width * F64,
            );
            t.record(
                y_base + ((tn.start * q + j0 * tn.num_points()) * F64) as u64,
                tn.num_points() * width * F64,
            );
        }
        // Upward: V generators in coarsenset order; leaves read their W panel.
        for cl in &plan.coarsenset.levels {
            for part in cl {
                for &id in part {
                    let g = &cds.generators[id];
                    if !g.is_present() {
                        continue;
                    }
                    t.record(gen_base + (g.v_offset * F64) as u64, g.rows * g.cols * F64);
                    if tree.nodes[id].is_leaf() {
                        let nd = &tree.nodes[id];
                        t.record(
                            w_base + ((nd.start * q + j0 * nd.num_points()) * F64) as u64,
                            nd.num_points() * width * F64,
                        );
                    }
                }
            }
        }
        // Coupling: B blocks in CDS order.
        for e in &cds.b_entries {
            t.record(b_base + (e.offset * F64) as u64, e.rows * e.cols * F64);
        }
        // Downward: U generators in reverse coarsen order; leaves write Y.
        for cl in plan.coarsenset.levels.iter().rev() {
            for part in cl {
                for &id in part.iter().rev() {
                    let g = &cds.generators[id];
                    if !g.is_present() {
                        continue;
                    }
                    t.record(gen_base + (g.u_offset * F64) as u64, g.rows * g.cols * F64);
                    if tree.nodes[id].is_leaf() {
                        let nd = &tree.nodes[id];
                        t.record(
                            y_base + ((nd.start * q + j0 * nd.num_points()) * F64) as u64,
                            nd.num_points() * width * F64,
                        );
                    }
                }
            }
        }
        j0 += width;
    }
    t
}

/// Coefficient of determination (R²) of a least-squares line through the
/// given points; used by the Figure 6 harness.
pub fn r_squared(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 1.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if sxx == 0.0 || syy == 0.0 {
        return 1.0;
    }
    (sxy * sxy) / (sxx * syy)
}

/// Run a MatRox p1+p2 inspection and return `(HMatrix, p1 seconds, p2 seconds)`.
///
/// # Errors
/// Propagates the inspector's [`MatroxError`].
pub fn inspect_split(
    points: &PointSet,
    dataset: DatasetId,
    structure: Structure,
    bacc: f64,
) -> Result<(HMatrix, f64, f64), MatroxError> {
    let kernel = kernel_for(dataset);
    let params = params_for(structure).with_bacc(bacc);
    let t0 = Instant::now();
    let p1 = inspector_p1(points, &kernel, &params)?;
    let p1_time = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let h = inspector_p2(points, &p1, &kernel, bacc)?;
    let p2_time = t0.elapsed().as_secs_f64();
    Ok((h, p1_time, p2_time))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_squared_of_perfect_line_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((r_squared(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_of_noise_is_small() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ys = [3.0, -1.0, 4.0, -2.0, 3.5, -0.5];
        assert!(r_squared(&xs, &ys) < 0.5);
    }

    #[test]
    fn doubling_sweep_is_total() {
        assert_eq!(doubling_sweep(512, 4096), vec![512, 1024, 2048, 4096]);
        assert_eq!(doubling_sweep(512, 4095), vec![512, 1024, 2048]);
        assert_eq!(doubling_sweep(512, 512), vec![512]);
        // Cap below the start: run the requested size, don't panic and
        // don't silently run a larger problem than asked for.
        assert_eq!(doubling_sweep(512, 100), vec![100]);
        // Degenerate inputs are clamped, never empty.
        assert_eq!(doubling_sweep(0, 0), vec![1]);
        assert_eq!(doubling_sweep(0, 4), vec![1, 2, 4]);
        assert!(!doubling_sweep(usize::MAX, usize::MAX).is_empty());
    }

    #[test]
    fn harness_pipeline_smoke_test() {
        let (points, h) = build_hmatrix(DatasetId::Unit, 512, Structure::Hss, 1e-4).expect("build");
        let w = random_w(points.len(), 4, 1);
        let y = h.matmul(&w).expect("matmul");
        assert_eq!(y.shape(), (512, 4));
        let setup = build_baseline(&points, DatasetId::Unit, Structure::Hss, 1e-4);
        let yb = gofmm_evaluate(&setup, &w);
        assert!(matrox_linalg::relative_error(&yb, &y) < 1e-3);
    }

    #[test]
    fn kernel_selection_matches_paper_settings() {
        assert_eq!(kernel_for(DatasetId::Covtype).name(), "gaussian");
        assert_eq!(kernel_for(DatasetId::Grid).name(), "inverse-distance");
    }
}
