//! Microkernel harness: scalar vs SIMD GF/s at the executor's typical
//! shapes, plus end-to-end kernel-selection deltas for the fig4-style
//! batched evaluation and the fig_solve-style factor + solve.
//!
//! Three sections, all written to `BENCH_gemm.json` (the perf-smoke gate
//! reads the summary keys):
//!
//! 1. **GF/s table** — for each shape the dispatched product is timed under
//!    the scalar kernel and (when the host has AVX2+FMA) the packed
//!    microkernel; every result is also pinned against the never-dispatched
//!    scalar reference `gemm_seq` (`max_rel_err_vs_seq`).  The gate's
//!    `min_simd_speedup` is the minimum speedup over the shapes with
//!    executor-typical panel widths (`n >= 64`).
//! 2. **Executor delta** — one `EvalSession` per kernel choice
//!    (`MatRoxParams::with_kernel`) over the same points; reports the
//!    batched-evaluation time per kernel and their relative difference.
//! 3. **Solve delta** — the ULV factorization honours the *process-wide*
//!    selection (`MATROX_KERNEL`), so the harness re-executes itself as a
//!    `--probe solve` subprocess once per kernel and parses the probe's
//!    JSON line.
//!
//! ```bash
//! cargo run -p matrox-bench --release --bin bench_gemm [--n 1024] [--q 64]
//! ```

use matrox_bench::{
    json_f64, json_opt, pool_banner, self_check_json, solve_setting, time_best, write_bench_json,
    HarnessArgs,
};
use matrox_core::{inspector, EvalSession, MatRoxParams, MatroxError};
use matrox_linalg::{
    frobenius_norm, gemm_seq, simd_available, GemmOp, KernelChoice, KernelDispatch, Matrix,
};
use matrox_points::{generate, DatasetId, Kernel};
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// A product shape the executor actually issues (leaf/coupling/transfer
/// blocks x RHS panels), plus two larger dense shapes for context.
struct Shape {
    label: &'static str,
    m: usize,
    k: usize,
    n: usize,
    /// Run through the TN (transposed-A) path, like the upward pass.
    tn: bool,
    /// Counts toward the gate's minimum speedup (executor-typical panel).
    gate: bool,
}

const SHAPES: &[Shape] = &[
    // Leaf blocks (leaf_size 64) against narrow..wide RHS panels.
    Shape {
        label: "leaf 64x64 q=8",
        m: 64,
        k: 64,
        n: 8,
        tn: false,
        gate: false,
    },
    Shape {
        label: "leaf 64x64 q=64",
        m: 64,
        k: 64,
        n: 64,
        tn: false,
        gate: true,
    },
    Shape {
        label: "leaf 64x64 q=256",
        m: 64,
        k: 64,
        n: 256,
        tn: false,
        gate: true,
    },
    // Coupling blocks (srank x srank).
    Shape {
        label: "coupling 32x32 q=64",
        m: 32,
        k: 32,
        n: 64,
        tn: false,
        gate: true,
    },
    // Upward transfer: V^T (stored 64x32) against a 64-wide panel.
    Shape {
        label: "transfer V^T 32x64 q=64",
        m: 32,
        k: 64,
        n: 64,
        tn: true,
        gate: true,
    },
    // Larger context shapes (dense baseline / peeled root territory).
    Shape {
        label: "dense 256^3",
        m: 256,
        k: 256,
        n: 256,
        tn: false,
        gate: true,
    },
    Shape {
        label: "tall 1024x64 q=128",
        m: 1024,
        k: 64,
        n: 128,
        tn: false,
        gate: true,
    },
];

fn random_vec(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let m = Matrix::random_uniform(len.max(1), 1, &mut rng);
    m.as_slice()[..len].to_vec()
}

/// (GF/s, relative error vs `gemm_seq`) for one shape under one dispatch.
fn measure(disp: KernelDispatch, s: &Shape) -> (f64, f64) {
    let (m, k, n) = (s.m, s.k, s.n);
    // `a` is stored m x k (NoTrans) or k x m (TN, read as its transpose).
    let a = random_vec(m * k, 11 + m as u64);
    let b = random_vec(k * n, 13 + n as u64);
    let mut c = vec![0.0; m * n];
    let run = |c: &mut [f64]| {
        if s.tn {
            disp.gemm_tn(&a, k, m, &b, n, c);
        } else {
            disp.gemm(&a, m, k, &b, n, c);
        }
    };

    // Accuracy against the scalar reference.
    run(&mut c);
    let am = if s.tn {
        Matrix::from_vec(k, m, a.clone()).transpose()
    } else {
        Matrix::from_vec(m, k, a.clone())
    };
    let bm = Matrix::from_vec(k, n, b.clone());
    let mut want = Matrix::zeros(m, n);
    gemm_seq(
        1.0,
        &am,
        GemmOp::NoTrans,
        &bm,
        GemmOp::NoTrans,
        0.0,
        &mut want,
    );
    let mut diff = Matrix::from_vec(m, n, c.clone());
    diff.sub_assign(&want);
    let rel_err = frobenius_norm(&diff) / frobenius_norm(&want).max(1e-300);

    // Throughput: enough repetitions for ~1e8 multiply-adds per sample.
    let flops = 2.0 * (m * k * n) as f64;
    let reps = ((2e8 / flops) as usize).max(4);
    let mut sample = || {
        let t0 = Instant::now();
        for _ in 0..reps {
            run(&mut c);
        }
        t0.elapsed().as_secs_f64() / reps as f64
    };
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        best = best.min(sample());
    }
    (flops / best / 1e9, rel_err)
}

/// Executor-level delta: one session per kernel choice over the same plan
/// inputs; returns (eval seconds, session) so the caller can diff outputs.
fn exec_session(n: usize, choice: KernelChoice) -> Result<EvalSession, MatroxError> {
    let pts = generate(DatasetId::Grid, n, 17);
    let kernel = Kernel::Gaussian { bandwidth: 5.0 };
    let params = MatRoxParams::h2b().with_bacc(1e-5).with_kernel(choice);
    EvalSession::build(&pts, &kernel, &params)
}

/// `--probe solve` subprocess body: factor + solve under the process-wide
/// kernel selection, one JSON line on stdout.
fn solve_probe(n: usize) -> Result<(), MatroxError> {
    let (kernel, params) = solve_setting(n, 1e-7);
    let pts = generate(DatasetId::Grid, n, 17);
    let h = inspector(&pts, &kernel, &params)?;
    let (f, factor_s) = time_best(|| h.factorize(), 2);
    let f = f?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let b = Matrix::random_uniform(n, 8, &mut rng);
    let (x, solve_s) = time_best(|| f.solve_matrix(&b), 2);
    let x = x?;
    // Residual against the compressed operator (cheap, kernel-sensitive).
    let mut r = h.matmul(&x)?;
    r.sub_assign(&b);
    let residual = frobenius_norm(&r) / frobenius_norm(&b);
    println!(
        "{{\"probe_kernel\": \"{}\", \"probe_factor_s\": {}, \"probe_solve_s\": {}, \"probe_residual\": {}}}",
        KernelDispatch::global().name(),
        json_f64(factor_s),
        json_f64(solve_s),
        json_f64(residual)
    );
    Ok(())
}

/// Run this binary again as a solve probe under `MATROX_KERNEL=<kernel>`.
fn run_solve_probe(n: usize, kernel: &str) -> Option<(f64, f64, f64)> {
    let exe = std::env::current_exe().ok()?;
    let out = std::process::Command::new(exe)
        .args(["--probe", "solve", "--n", &n.to_string()])
        .env("MATROX_KERNEL", kernel)
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout);
    Some((
        matrox_bench::json_lookup_number(&text, "probe_factor_s")?,
        matrox_bench::json_lookup_number(&text, "probe_solve_s")?,
        matrox_bench::json_lookup_number(&text, "probe_residual")?,
    ))
}

fn main() -> Result<(), MatroxError> {
    let args = HarnessArgs::parse(1024, 64);
    if args.str_flag("--probe").as_deref() == Some("solve") {
        return solve_probe(args.n);
    }
    let check = pool_banner()?;
    let auto = KernelDispatch::global();
    let simd = simd_available();
    println!(
        "==== bench_gemm: kernel layer (auto = {}, simd_available = {}, blocking = {:?}) ====\n",
        auto.name(),
        simd,
        auto.blocking()
    );

    // ---- 1. GF/s table --------------------------------------------------
    let scalar = KernelDispatch::scalar();
    let simd_disp = simd.then(|| KernelDispatch::resolve(KernelChoice::Avx2));
    println!(
        "{:<26} {:>14} {:>14} {:>9}",
        "shape", "scalar GF/s", "simd GF/s", "speedup"
    );
    let mut shape_json = String::new();
    let mut min_gate_speedup: Option<f64> = None;
    let mut max_rel_err: f64 = 0.0;
    for s in SHAPES {
        let (gs, es) = measure(scalar, s);
        max_rel_err = max_rel_err.max(es);
        let (gv, speedup) = match simd_disp {
            Some(d) => {
                let (gv, ev) = measure(d, s);
                max_rel_err = max_rel_err.max(ev);
                (Some(gv), Some(gv / gs))
            }
            None => (None, None),
        };
        if s.gate {
            if let Some(sp) = speedup {
                min_gate_speedup = Some(min_gate_speedup.map_or(sp, |m: f64| m.min(sp)));
            }
        }
        println!(
            "{:<26} {:>14.2} {:>14} {:>9}",
            s.label,
            gs,
            gv.map_or("-".into(), |v| format!("{v:.2}")),
            speedup.map_or("-".into(), |v| format!("{v:.2}x"))
        );
        let _ = writeln!(
            shape_json,
            "    {{\"label\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"tn\": {}, \
             \"gate\": {}, \"scalar_gflops\": {}, \"simd_gflops\": {}, \"speedup\": {}}},",
            s.label,
            s.m,
            s.k,
            s.n,
            s.tn,
            s.gate,
            json_f64(gs),
            json_opt(gv),
            json_opt(speedup)
        );
    }
    let shape_json = shape_json.trim_end().trim_end_matches(',').to_string();
    println!("\nmax relative error vs gemm_seq: {max_rel_err:.2e}");
    if let Some(sp) = min_gate_speedup {
        println!("min speedup over executor-typical shapes: {sp:.2}x");
    }

    // ---- 2. Executor delta ----------------------------------------------
    let n = args.n;
    let q = args.q;
    println!("\n---- executor delta (N = {n}, Q = {q}, H2-b, grid) ----");
    let mut rng = rand::rngs::StdRng::seed_from_u64(29);
    let w = Matrix::random_uniform(n, q, &mut rng);
    let s_scalar = exec_session(n, KernelChoice::Scalar)?;
    let (y_scalar, exec_scalar_s) = time_best(|| s_scalar.evaluate(&w), 3);
    let y_scalar = y_scalar?;
    let (exec_simd_s, exec_rel_err, exec_speedup) = if simd {
        let s_simd = exec_session(n, KernelChoice::Avx2)?;
        let (y_simd, t) = time_best(|| s_simd.evaluate(&w), 3);
        let y_simd = y_simd?;
        let mut diff = y_simd.clone();
        diff.sub_assign(&y_scalar);
        let rel = frobenius_norm(&diff) / frobenius_norm(&y_scalar);
        (Some(t), Some(rel), Some(exec_scalar_s / t))
    } else {
        (None, None, None)
    };
    println!(
        "evaluate(W): scalar {exec_scalar_s:.4}s, simd {}, speedup {}, rel err {}",
        json_opt(exec_simd_s),
        json_opt(exec_speedup),
        json_opt(exec_rel_err)
    );

    // ---- 3. Solve delta (subprocess per kernel) -------------------------
    let solve_n = args.usize_flag("--solve-n", 1024);
    println!("\n---- factor + solve delta (N = {solve_n}, subprocess per kernel) ----");
    let solve_scalar = run_solve_probe(solve_n, "scalar");
    let solve_simd = if simd {
        run_solve_probe(solve_n, "avx2")
    } else {
        None
    };
    let mut solve_speedup = None;
    if let Some((fs, ss, rs)) = solve_scalar {
        println!("scalar: factor {fs:.4}s solve {ss:.4}s residual {rs:.2e}");
        if let Some((fv, sv, rv)) = solve_simd {
            println!("avx2:   factor {fv:.4}s solve {sv:.4}s residual {rv:.2e}");
            let sp = (fs + ss) / (fv + sv);
            solve_speedup = Some(sp);
            println!("factor+solve speedup: {sp:.2}x");
        }
    } else {
        println!("solve probe unavailable (subprocess failed)");
    }

    let json = format!(
        "{{\n  \"n\": {n},\n  \"q\": {q},\n  \"kernel_auto\": \"{auto_name}\",\n  \
         \"simd_available\": {simd},\n  \"blocking_mc\": {mc},\n  \"blocking_kc\": {kc},\n  \
         \"blocking_nc\": {nc},\n  \"shapes\": [\n{shape_json}\n  ],\n  \
         \"min_simd_speedup\": {min_sp},\n  \"max_rel_err_vs_seq\": {rel},\n  \
         \"exec_scalar_s\": {e_s},\n  \"exec_simd_s\": {e_v},\n  \"exec_speedup\": {e_sp},\n  \
         \"exec_rel_err\": {e_re},\n  \"solve_scalar_s\": {s_s},\n  \"solve_simd_s\": {s_v},\n  \
         \"solve_speedup\": {s_sp},\n  \"self_check\": {sc}\n}}\n",
        auto_name = auto.name(),
        mc = auto.blocking().mc,
        kc = auto.blocking().kc,
        nc = auto.blocking().nc,
        min_sp = json_opt(min_gate_speedup),
        rel = json_f64(max_rel_err),
        e_s = json_f64(exec_scalar_s),
        e_v = json_opt(exec_simd_s),
        e_sp = json_opt(exec_speedup),
        e_re = json_opt(exec_rel_err),
        s_s = json_opt(solve_scalar.map(|(f, s, _)| f + s)),
        s_v = json_opt(solve_simd.map(|(f, s, _)| f + s)),
        s_sp = json_opt(solve_speedup),
        sc = self_check_json(&check),
    );
    write_bench_json("BENCH_gemm.json", &json);
    Ok(())
}
