//! Figure 6: correlation between MatRox's speedup over GOFMM and the average
//! memory access latency (locality proxy).
//!
//! The paper measures L1/LLC/TLB counters with PAPI and shows that the
//! speedup of the MatRox-generated code correlates with the reduction in
//! average memory access latency (R² = 0.81).  Hardware counters are not
//! available here, so the harness replays the submatrix access pattern of
//! each evaluation strategy through a software cache model (DESIGN.md
//! substitution S5):
//!
//! * **MatRox / CDS trace** — blocks live in the flat CDS buffers and are
//!   visited in the blocked/coarsened execution order;
//! * **GOFMM / TB trace** — every block has its own page-aligned allocation
//!   scattered through the address space (tree-based storage) and blocks are
//!   visited in HTree/interaction order.
//!
//! For every dataset the harness prints the measured speedup and both
//! latencies, then the R² between speedup and the latency ratio.
//!
//! ```bash
//! cargo run -p matrox-bench --release --bin fig6 [--n 2048] [--q 256]
//! ```

use matrox_bench::*;
use matrox_cachesim::{CacheHierarchy, Trace};
use matrox_codegen::EvalPlan;
use matrox_compress::Compression;
use matrox_core::MatroxError;
use matrox_points::{generate, DatasetId};
use matrox_tree::{ClusterTree, HTree, Structure};

const F64: usize = std::mem::size_of::<f64>();

/// Build the access trace of the MatRox executor: CDS buffers are contiguous
/// and visited in the generated-code order.
fn cds_trace(plan: &EvalPlan, tree: &ClusterTree, q: usize) -> Trace {
    let cds = &plan.cds;
    let mut t = Trace::new();
    // Synthetic contiguous layout: [d_values | gen_values | b_values | W | Y].
    let d_base = 0u64;
    let gen_base = d_base + (cds.d_values.len() * F64) as u64;
    let b_base = gen_base + (cds.gen_values.len() * F64) as u64;
    let w_base = b_base + (cds.b_values.len() * F64) as u64;
    let n = tree.perm.len();
    let y_base = w_base + (n * q * F64) as u64;

    // Near phase: D blocks in CDS order, plus the W/Y rows they touch.
    for e in &cds.d_entries {
        t.record(d_base + (e.offset * F64) as u64, e.rows * e.cols * F64);
        let sn = &tree.nodes[e.source];
        let tn = &tree.nodes[e.target];
        t.record(
            w_base + (sn.start * q * F64) as u64,
            sn.num_points() * q * F64,
        );
        t.record(
            y_base + (tn.start * q * F64) as u64,
            tn.num_points() * q * F64,
        );
    }
    // Upward + downward: generators in coarsenset order (V then U adjacent).
    for cl in &plan.coarsenset.levels {
        for part in cl {
            for &id in part {
                let g = &cds.generators[id];
                if !g.is_present() {
                    continue;
                }
                t.record(gen_base + (g.v_offset * F64) as u64, g.rows * g.cols * F64);
                if tree.nodes[id].is_leaf() {
                    let nd = &tree.nodes[id];
                    t.record(
                        w_base + (nd.start * q * F64) as u64,
                        nd.num_points() * q * F64,
                    );
                }
            }
        }
    }
    // Coupling: B blocks in CDS order.
    for e in &cds.b_entries {
        t.record(b_base + (e.offset * F64) as u64, e.rows * e.cols * F64);
    }
    // Downward: U generators (reverse coarsen order) and leaf Y rows.
    for cl in plan.coarsenset.levels.iter().rev() {
        for part in cl {
            for &id in part.iter().rev() {
                let g = &cds.generators[id];
                if !g.is_present() {
                    continue;
                }
                t.record(gen_base + (g.u_offset * F64) as u64, g.rows * g.cols * F64);
                if tree.nodes[id].is_leaf() {
                    let nd = &tree.nodes[id];
                    t.record(
                        y_base + (nd.start * q * F64) as u64,
                        nd.num_points() * q * F64,
                    );
                }
            }
        }
    }
    t
}

/// Build the access trace of a tree-based evaluator: every block has its own
/// page-aligned allocation at a scattered address and blocks are visited in
/// HTree order.
fn tree_based_trace(
    compression: &Compression,
    tree: &ClusterTree,
    htree: &HTree,
    q: usize,
) -> Trace {
    const PAGE: u64 = 4096;
    let mut t = Trace::new();
    // Assign scattered base addresses per block/generator, mimicking
    // individual heap allocations interleaved with other data.
    let mut next_slot: u64 = 0;
    let mut alloc = |elems: usize| -> u64 {
        // Spread allocations out with a large stride and a hash-based shuffle.
        let slot = next_slot;
        next_slot += 1;
        let hashed = slot.wrapping_mul(2654435761) % (1 << 20);
        hashed * PAGE + ((elems as u64) % PAGE)
    };
    let near_addr: Vec<u64> = compression
        .near_blocks
        .iter()
        .map(|(_, m)| alloc(m.len()))
        .collect();
    let far_addr: Vec<u64> = compression
        .far_blocks
        .iter()
        .map(|(_, m)| alloc(m.len()))
        .collect();
    let gen_addr: Vec<u64> = compression
        .bases
        .iter()
        .map(|b| alloc(b.v.len() + b.u.len()))
        .collect();
    let w_base = 1u64 << 34;
    let y_base = (1u64 << 34) + (tree.perm.len() * q * F64) as u64;

    // Near loop in interaction order (unordered w.r.t. targets).
    for (k, ((i, j), m)) in compression.near_blocks.iter().enumerate() {
        t.record(near_addr[k], m.len() * F64);
        let sn = &tree.nodes[*j];
        let tn = &tree.nodes[*i];
        // Tree-based code gathers W rows by global point index: scattered.
        for &p in tree.indices(sn.id) {
            t.record(w_base + (p * q * F64) as u64, q * F64);
        }
        for &p in tree.indices(tn.id) {
            t.record(y_base + (p * q * F64) as u64, q * F64);
        }
    }
    // Upward: level-by-level over nodes (tree order, scattered generators).
    for level in (1..=tree.height).rev() {
        for id in tree.nodes_at_level(level) {
            let b = &compression.bases[id];
            if b.srank == 0 {
                continue;
            }
            t.record(gen_addr[id], b.v.len() * F64);
            if tree.nodes[id].is_leaf() {
                for &p in tree.indices(id) {
                    t.record(w_base + (p * q * F64) as u64, q * F64);
                }
            }
        }
    }
    // Coupling in far-interaction order.
    for (k, (_, m)) in compression.far_blocks.iter().enumerate() {
        t.record(far_addr[k], m.len() * F64);
    }
    // Downward level-by-level.
    for level in 1..=tree.height {
        for id in tree.nodes_at_level(level) {
            let b = &compression.bases[id];
            if b.srank == 0 {
                continue;
            }
            t.record(gen_addr[id], b.u.len() * F64);
            if tree.nodes[id].is_leaf() {
                for &p in tree.indices(id) {
                    t.record(y_base + (p * q * F64) as u64, q * F64);
                }
            }
        }
    }
    let _ = htree;
    t
}

fn main() -> Result<(), MatroxError> {
    let args = HarnessArgs::parse(DEFAULT_N, DEFAULT_Q);
    let datasets = if args.datasets.is_empty() {
        DatasetId::all().to_vec()
    } else {
        args.datasets.clone()
    };

    println!(
        "Figure 6: speedup vs average memory access latency (N = {}, Q = {})\n",
        args.n, args.q
    );
    println!(
        "{:<12} {:<6} {:>9} {:>14} {:>14} {:>12}",
        "dataset", "struct", "speedup", "AMAL MatRox", "AMAL GOFMM", "AMAL ratio"
    );

    let mut speedups = Vec::new();
    let mut ratios = Vec::new();
    for structure in [Structure::Hss, Structure::h2b()] {
        for &dataset in &datasets {
            let points = generate(dataset, args.n, 0);
            let (_, h) = build_hmatrix(dataset, args.n, structure, 1e-5)?;
            let setup = build_baseline(&points, dataset, structure, 1e-5);
            let w = random_w(args.n, args.q, 13);
            let (y, t_matrox) = time_best(|| h.matmul(&w), 1);
            y?;
            let (_, t_gofmm) = time_best(|| gofmm_evaluate(&setup, &w), 1);
            let speedup = t_gofmm / t_matrox;

            let trace_cds = cds_trace(&h.plan, &h.tree, args.q);
            let trace_tb = tree_based_trace(&setup.compression, &setup.tree, &setup.htree, args.q);
            let amal_cds = trace_cds
                .replay(CacheHierarchy::haswell())
                .average_memory_access_latency();
            let amal_tb = trace_tb
                .replay(CacheHierarchy::haswell())
                .average_memory_access_latency();

            println!(
                "{:<12} {:<6} {:>9.2} {:>14.2} {:>14.2} {:>12.2}",
                dataset.name(),
                structure.name(),
                speedup,
                amal_cds,
                amal_tb,
                amal_tb / amal_cds
            );
            speedups.push(speedup);
            ratios.push(amal_tb / amal_cds);
        }
    }
    let r2 = r_squared(&ratios, &speedups);
    println!("\nR^2 between speedup and memory-access-latency improvement: {r2:.2} (paper: 0.81)");
    Ok(())
}
