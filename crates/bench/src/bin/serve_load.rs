//! Load generator for the `matrox-serve` reactor -> `BENCH_serve.json`.
//!
//! Four phases, each against its own server so the counters stay
//! attributable:
//!
//! 1. **Bitwise** — a coalesced burst is compared column-by-column against
//!    per-query reference evaluations (`serve_bitwise`).
//! 2. **Closed-loop throughput** — the same burst through a width-1 server
//!    (coalescing disabled) and a coalescing server; the QPS ratio is the
//!    serving-layer restatement of the paper's batched-executor amortization
//!    (`serve_throughput_ratio`, `serve_mean_batch_width`).
//! 3. **Open-loop latency** — queries paced at half the measured coalesced
//!    capacity across `--tenants` tenants and a two-model mix; reactor-side
//!    latencies give p50/p95/p99 (`serve_p99_p50_ratio`).
//! 4. **Eviction** — three models under a budget that can hold only two
//!    exercise the registry's LRU path (`serve_evictions`).
//!
//! The submission side is deliberately single-threaded: `ServeHandle::query`
//! never blocks, so one thread can put a whole burst in flight and the
//! reactor's coalescing queues see the same concurrency a fleet of clients
//! would produce.
//!
//! Flags: `--n` (problem size), `--tenants`, `--burst` (closed-loop
//! queries), `--open-queries`.  The `MATROX_SERVE_*` knobs (KNOBS.md) feed
//! the base [`ServeConfig`] exactly as they would a real serving process.

use matrox_bench::{json_f64, pool_banner, write_bench_json, HarnessArgs};
use matrox_core::{inspector, save, EvalSession, MatRoxParams, MatroxError};
use matrox_points::{generate, DatasetId, Kernel};
use matrox_serve::{Model, ServeConfig, Server};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn matvec_session(n: usize, seed: u64, bandwidth: f64) -> Result<EvalSession, MatroxError> {
    let points = generate(DatasetId::Grid, n, seed);
    let kernel = Kernel::Gaussian { bandwidth };
    let params = MatRoxParams::h2b().with_bacc(1e-5).with_leaf_size(32);
    EvalSession::build(&points, &kernel, &params)
}

/// Deterministic, query-distinct right-hand side.
fn rhs(n: usize, j: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 31 + j * 7 + 1) as f64).sin())
        .collect()
}

fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Nearest-rank percentile over an already-sorted slice (`NaN` when empty).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted
        .get(idx.min(sorted.len() - 1))
        .copied()
        .unwrap_or(f64::NAN)
}

/// Phase 1: a coalesced burst must be bitwise identical to per-query
/// reference evaluations on a private session.
fn bitwise_phase(session: &EvalSession, n: usize) -> Result<bool, MatroxError> {
    let width = ServeConfig::from_env().max_batch.max(2);
    let server = Server::spawn(
        ServeConfig::from_env()
            .with_max_batch(width)
            .with_coalesce_window(Duration::from_millis(100)),
    )?;
    let handle = server.handle();
    handle.insert_model("m", Model::Matvec(Arc::new(session.clone())))?;

    let pending: Vec<_> = (0..width)
        .map(|j| handle.query("m", "t", rhs(n, j)))
        .collect();
    let mut all_bitwise = true;
    let mut max_width = 0usize;
    for (j, p) in pending.into_iter().enumerate() {
        let reply = p.wait()?;
        let expected = session.evaluate_vec(&rhs(n, j))?;
        all_bitwise &= bitwise_eq(&reply.y, &expected);
        max_width = max_width.max(reply.batch_width);
    }
    println!(
        "bitwise: {} columns, coalesced width {}, identical = {}",
        width, max_width, all_bitwise
    );
    Ok(all_bitwise && max_width > 1)
}

/// Time a closed-loop burst of `burst` queries through a server with the
/// given config; returns (qps, mean coalesced batch width).
fn closed_loop(
    session: &EvalSession,
    n: usize,
    burst: usize,
    cfg: ServeConfig,
) -> Result<(f64, f64), MatroxError> {
    let server = Server::spawn(cfg)?;
    let handle = server.handle();
    handle.insert_model("m", Model::Matvec(Arc::new(session.clone())))?;
    // Warm the dispatch path so neither run pays first-touch costs.
    handle.query_wait("m", "warm", rhs(n, 0))?;

    let t0 = Instant::now();
    let pending: Vec<_> = (0..burst)
        .map(|j| handle.query("m", "t", rhs(n, j)))
        .collect();
    for p in pending {
        p.wait()?;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = server.shutdown()?;
    let t = stats.tenant("t").copied().unwrap_or_default();
    Ok((burst as f64 / elapsed.max(1e-12), t.mean_batch_width()))
}

/// Phase 3: open-loop paced submission across tenants and a two-model mix;
/// returns reactor-side latencies (seconds) plus the achieved mean width.
fn open_loop(
    sessions: &[EvalSession],
    n: usize,
    tenants: usize,
    queries: usize,
    target_qps: f64,
) -> Result<(Vec<f64>, f64), MatroxError> {
    let server = Server::spawn(ServeConfig::from_env())?;
    let handle = server.handle();
    for (i, s) in sessions.iter().enumerate() {
        handle.insert_model(&format!("m{i}"), Model::Matvec(Arc::new(s.clone())))?;
    }

    let interval = Duration::from_secs_f64(1.0 / target_qps.max(1.0));
    let start = Instant::now();
    let mut pending = Vec::with_capacity(queries);
    for i in 0..queries {
        let due = start + interval * i as u32;
        let now = Instant::now();
        if now < due {
            std::thread::sleep(due - now);
        }
        let model = format!("m{}", i % sessions.len());
        let tenant = format!("tenant-{}", i % tenants.max(1));
        pending.push(handle.query(&model, &tenant, rhs(n, i)));
    }
    handle.flush()?;
    let mut latencies: Vec<f64> = Vec::with_capacity(queries);
    for p in pending {
        latencies.push(p.wait()?.latency().as_secs_f64());
    }
    let stats = server.shutdown()?;
    latencies.sort_by(|a, b| a.total_cmp(b));
    Ok((latencies, stats.totals().mean_batch_width()))
}

/// Phase 4: three models under a two-model budget -> LRU evictions and
/// transparent reloads.  Returns (evictions, loads, budget, resident).
fn eviction_phase(n: usize) -> Result<(u64, u64, usize, usize), MatroxError> {
    let dir = std::env::temp_dir().join(format!("matrox-serve-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(MatroxError::Io)?;

    let mut paths: Vec<PathBuf> = Vec::new();
    let mut sizes: Vec<usize> = Vec::new();
    for (i, seed) in [41u64, 42, 43].iter().enumerate() {
        let points = generate(DatasetId::Grid, n, *seed);
        let kernel = Kernel::Gaussian {
            bandwidth: 1.5 + i as f64 * 0.5,
        };
        let params = MatRoxParams::h2b().with_bacc(1e-5).with_leaf_size(32);
        let h = inspector(&points, &kernel, &params)?;
        sizes.push(h.plan.storage_bytes());
        let path = dir.join(format!("model-{i}.cds"));
        save(&h, &path)?;
        paths.push(path);
    }

    // Any two models fit, all three never do: registering the third must
    // evict the LRU resident, and querying the evicted id must reload it.
    let total: usize = sizes.iter().sum();
    let smallest = sizes.iter().copied().min().unwrap_or(0);
    let budget = total - smallest / 2;
    let server = Server::spawn(
        ServeConfig::from_env()
            .with_max_batch(1)
            .with_memory_budget_bytes(budget),
    )?;
    let handle = server.handle();
    for (i, p) in paths.iter().enumerate() {
        handle.load_model(&format!("model-{i}"), p.clone())?;
    }
    for i in 0..paths.len() {
        handle.query_wait(&format!("model-{i}"), "t", rhs(n, i))?;
    }
    let stats = server.shutdown()?;
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
    Ok((
        stats.registry.evictions,
        stats.registry.loads,
        budget,
        stats.registry.resident_bytes,
    ))
}

fn main() -> Result<(), MatroxError> {
    let args = HarnessArgs::parse(256, 1);
    let n = args.n;
    let tenants = args.usize_flag("--tenants", 4);
    let burst = args.usize_flag("--burst", 256);
    let open_queries = args.usize_flag("--open-queries", 384);
    let check = pool_banner()?;
    println!(
        "serve_load: N = {n}, tenants = {tenants}, burst = {burst}, open-loop {open_queries} queries"
    );

    let session = matvec_session(n, 11, 2.0)?;
    let session_b = matvec_session(n, 12, 2.5)?;

    // Phase 1: coalescing must be bitwise-invisible.
    let serve_bitwise = bitwise_phase(&session, n)?;

    // Phase 2: closed-loop saturation, width 1 vs coalesced.
    let base = ServeConfig::from_env();
    let (width1_qps, _) = closed_loop(&session, n, burst, base.with_max_batch(1))?;
    let (coalesced_qps, mean_batch_width) = closed_loop(
        &session,
        n,
        burst,
        base.with_coalesce_window(Duration::from_millis(2)),
    )?;
    let throughput_ratio = coalesced_qps / width1_qps.max(1e-12);
    println!(
        "closed loop: width-1 {width1_qps:.0} qps, coalesced {coalesced_qps:.0} qps \
         ({throughput_ratio:.2}x, mean width {mean_batch_width:.1})"
    );

    // Phase 3: open loop at half the measured *width-1* capacity — paced
    // traffic spread over tenants rarely coalesces, so that is the capacity
    // it actually sees; staying under it keeps latency = window + service
    // instead of backlog.
    let target_qps = (width1_qps * 0.5).clamp(200.0, 20_000.0);
    let sessions = [session, session_b];
    let (latencies, open_width) = open_loop(&sessions, n, tenants, open_queries, target_qps)?;
    let p50 = percentile(&latencies, 50.0);
    let p95 = percentile(&latencies, 95.0);
    let p99 = percentile(&latencies, 99.0);
    let p99_p50 = p99 / p50.max(1e-12);
    println!(
        "open loop: target {target_qps:.0} qps, p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms \
         (p99/p50 {p99_p50:.1}, mean width {open_width:.2})",
        p50 * 1e3,
        p95 * 1e3,
        p99 * 1e3
    );

    // Phase 4: LRU eviction under a deliberately tight budget.
    let (evictions, loads, budget, resident) = eviction_phase(n)?;
    println!(
        "eviction: budget {budget} B, resident {resident} B, {evictions} evictions, {loads} loads"
    );

    let json = format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"n\": {n},\n  \"tenants\": {tenants},\n  \
         \"threads\": {threads},\n  \"closed_loop_queries\": {burst},\n  \
         \"serve_bitwise\": {serve_bitwise},\n  \"width1_qps\": {width1},\n  \
         \"coalesced_qps\": {coalesced},\n  \"serve_throughput_ratio\": {ratio},\n  \
         \"serve_mean_batch_width\": {width},\n  \"open_loop\": {{\"target_qps\": {target}, \
         \"queries\": {open_queries}, \"p50_ms\": {p50ms}, \"p95_ms\": {p95ms}, \
         \"p99_ms\": {p99ms}, \"achieved_mean_width\": {ow}}},\n  \
         \"serve_p99_p50_ratio\": {p99p50},\n  \"eviction\": {{\"models\": 3, \
         \"budget_bytes\": {budget}, \"resident_bytes\": {resident}, \"loads\": {loads}}},\n  \
         \"serve_evictions\": {evictions}\n}}\n",
        threads = check.configured_threads,
        width1 = json_f64(width1_qps),
        coalesced = json_f64(coalesced_qps),
        ratio = json_f64(throughput_ratio),
        width = json_f64(mean_batch_width),
        target = json_f64(target_qps),
        p50ms = json_f64(p50 * 1e3),
        p95ms = json_f64(p95 * 1e3),
        p99ms = json_f64(p99 * 1e3),
        ow = json_f64(open_width),
        p99p50 = json_f64(p99_p50),
    );
    write_bench_json("BENCH_serve.json", &json);
    Ok(())
}
