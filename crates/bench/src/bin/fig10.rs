//! Figure 10: reusing inspection when the accuracy changes.
//!
//! The experiment of Section 5: the block accuracy `bacc` is swept over five
//! values (1e-1 ... 1e-5) for the H²-b structure.  MatRox runs inspector-p1
//! once and re-runs only inspector-p2 + the executor per accuracy; the
//! library baseline (GOFMM-style) re-runs its full compression + evaluation
//! every time.  The harness prints both totals normalized to the baseline
//! (the paper reports MatRox at ~2.21x faster on average, with
//! sampling-heavy datasets like mnist benefiting the most).
//!
//! ```bash
//! cargo run -p matrox-bench --release --bin fig10 [--n 2048] [--q 256] [--datasets mnist,letter]
//! ```

use matrox_bench::*;
use matrox_core::{inspector_p1, inspector_p2, MatroxError};
use matrox_points::{generate, DatasetId};
use matrox_tree::Structure;
use std::time::Instant;

fn main() -> Result<(), MatroxError> {
    let args = HarnessArgs::parse(DEFAULT_N, DEFAULT_Q);
    let datasets = if args.datasets.is_empty() {
        DatasetId::all().to_vec()
    } else {
        args.datasets.clone()
    };
    let baccs = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5];
    let structure = Structure::h2b();

    println!(
        "Figure 10: 5 accuracy changes with inspector-p1 reuse (H2-b, N = {}, Q = {})\n",
        args.n, args.q
    );
    println!(
        "{:<12} {:>10} {:>10} {:>10} | {:>10} {:>10} | {:>16} {:>9}",
        "dataset",
        "p1 (s)",
        "p2 sum",
        "exec sum",
        "gofmm-cmp",
        "gofmm-ev",
        "normalized (M/G)",
        "speedup"
    );

    let mut speedups = Vec::new();
    for &dataset in &datasets {
        let points = generate(dataset, args.n, 0);
        let kernel = kernel_for(dataset);
        let params = params_for(structure);
        let w = random_w(args.n, args.q, 7);

        // MatRox with reuse: p1 once, p2 + executor per bacc.
        let t0 = Instant::now();
        let p1 = inspector_p1(&points, &kernel, &params)?;
        let p1_time = t0.elapsed().as_secs_f64();
        let mut p2_sum = 0.0;
        let mut exec_sum = 0.0;
        for &bacc in &baccs {
            let t0 = Instant::now();
            let h = inspector_p2(&points, &p1, &kernel, bacc)?;
            p2_sum += t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            h.matmul(&w)?;
            exec_sum += t0.elapsed().as_secs_f64();
        }
        let matrox_total = p1_time + p2_sum + exec_sum;

        // GOFMM-style: full compression + evaluation per bacc.
        let mut gofmm_cmp = 0.0;
        let mut gofmm_ev = 0.0;
        for &bacc in &baccs {
            let setup = build_baseline(&points, dataset, structure, bacc);
            gofmm_cmp += setup.compression_time;
            let t0 = Instant::now();
            let _ = gofmm_evaluate(&setup, &w);
            gofmm_ev += t0.elapsed().as_secs_f64();
        }
        let gofmm_total = gofmm_cmp + gofmm_ev;
        let speedup = gofmm_total / matrox_total;
        speedups.push(speedup);
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3} | {:>10.3} {:>10.3} | {:>16.3} {:>9.2}",
            dataset.name(),
            p1_time,
            p2_sum,
            exec_sum,
            gofmm_cmp,
            gofmm_ev,
            matrox_total / gofmm_total,
            speedup
        );
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    println!(
        "\naverage speedup of MatRox-with-reuse over full re-compression: {avg:.2}x (paper: 2.21x avg, up to 2.64x)"
    );
    Ok(())
}
