//! Solve-scenario harness: ULV factor + solve versus the dense Cholesky
//! baseline.
//!
//! The paper's evaluation stops at `Y = K~ W`; this harness measures the new
//! factor/solve subsystem the STRUMPACK baseline exists for.  For each `N`
//! it compresses an SPD kernel-ridge Gaussian matrix with HSS structure
//! (the canonical [`matrox_bench::solve_setting`]), ULV-factors it, solves
//! a single- and a multi-RHS system, and reports:
//!
//! * inspector / factor / solve wall-clock (with the leaf-vs-merge factor
//!   breakdown),
//! * the relative residual `||K x~ - b|| / ||b||` against the *exact*
//!   kernel matrix (`O(N^2)`),
//! * for `N <= --dense-max` (default 2048): the dense Cholesky baseline's
//!   factor + solve time and the solution difference, isolating the
//!   structure effect with shared kernels.
//!
//! Besides the table, the sweep is written to `BENCH_solve.json` so later
//! performance work has a machine-readable trajectory to compare against.
//!
//! ```bash
//! cargo run -p matrox-bench --release --bin fig_solve [--n 4096] [--q 16] [--dense-max 2048]
//! ```

use matrox_baselines::DenseCholeskyBaseline;
use matrox_bench::{
    doubling_sweep, json_f64, json_opt, solve_setting, time_best, write_bench_json, HarnessArgs,
};
use matrox_core::{inspector, MatroxError};
use matrox_linalg::{frobenius_norm, Matrix};
use matrox_points::{generate, DatasetId};
use std::fmt::Write as _;

struct SolveRow {
    n: usize,
    inspector_s: f64,
    factor_s: f64,
    factor_leaf_s: f64,
    factor_merge_s: f64,
    solve1_s: f64,
    solveq_s: f64,
    residual: f64,
    factor_bytes: usize,
    dense_factor_s: Option<f64>,
    dense_solve_s: Option<f64>,
    dense_diff: Option<f64>,
}

fn main() -> Result<(), MatroxError> {
    let args = HarnessArgs::parse(4096, 16);
    let n_max = args.n;
    let q = args.q;
    let dense_max = args.usize_flag("--dense-max", 2048);
    let bacc = 1e-7;

    let ns = doubling_sweep(512, n_max);

    println!(
        "==== fig_solve: HSS ULV factor + solve, kernel-ridge Gaussian on grid (bacc = {bacc:e}, Q = {q}) ===="
    );
    println!(
        "{:>6} | {:>9} {:>9} {:>9} | {:>9} {:>9} | {:>10} | {:>10} {:>10} {:>10}",
        "N",
        "insp(s)",
        "factor(s)",
        "solve(s)",
        "leaf(s)",
        "merge(s)",
        "residual",
        "dchol(s)",
        "dsolve(s)",
        "diff"
    );

    let mut rows: Vec<SolveRow> = Vec::new();
    for &n in &ns {
        let points = generate(DatasetId::Grid, n, 0);
        let (kernel, params) = solve_setting(n, bacc);

        let (h, t_insp) = time_best(|| inspector(&points, &kernel, &params), 1);
        let h = h?;
        let (fh, t_factor) = time_best(|| h.factorize(), 1);
        let fh = fh?;

        let b1: Vec<f64> = (0..n).map(|i| ((i % 17) as f64 - 8.0) * 0.25).collect();
        let (x1, t_solve1) = time_best(|| fh.solve(&b1), 2);
        let x1 = x1?;
        let bq = matrox_bench::random_w(n, q, 7);
        let (yq, t_solveq) = time_best(|| fh.solve_matrix(&bq), 1);
        yq?;

        let x1m = Matrix::from_vec(n, 1, x1.clone());
        let b1m = Matrix::from_vec(n, 1, b1.clone());
        let residual = fh.relative_residual(&points, &x1m, &b1m);

        let (dense_factor_s, dense_solve_s, dense_diff) = if n <= dense_max {
            let (baseline, t_dfac) = time_best(|| DenseCholeskyBaseline::new(&points, &kernel), 1);
            let baseline = baseline?;
            let (xd, t_dsol) = time_best(|| baseline.solve(&b1), 2);
            let mut diff = Matrix::from_vec(n, 1, xd);
            diff.sub_assign(&x1m);
            let rel = frobenius_norm(&diff) / frobenius_norm(&x1m).max(f64::MIN_POSITIVE);
            (Some(t_dfac), Some(t_dsol), Some(rel))
        } else {
            (None, None, None)
        };

        let fmt_opt = |v: Option<f64>| match v {
            Some(v) => format!("{v:>10.4}"),
            None => format!("{:>10}", "n/a"),
        };
        let fmt_opt_e = |v: Option<f64>| match v {
            Some(v) => format!("{v:>10.2e}"),
            None => format!("{:>10}", "n/a"),
        };
        println!(
            "{n:>6} | {t_insp:>9.3} {t_factor:>9.3} {t_solve1:>9.4} | {:>9.4} {:>9.4} | {residual:>10.2e} | {} {} {}",
            fh.factor.timings.leaf_cholesky.as_secs_f64(),
            fh.factor.timings.merge.as_secs_f64(),
            fmt_opt(dense_factor_s),
            fmt_opt(dense_solve_s),
            fmt_opt_e(dense_diff),
        );
        rows.push(SolveRow {
            n,
            inspector_s: t_insp,
            factor_s: t_factor,
            factor_leaf_s: fh.factor.timings.leaf_cholesky.as_secs_f64(),
            factor_merge_s: fh.factor.timings.merge.as_secs_f64(),
            solve1_s: t_solve1,
            solveq_s: t_solveq,
            residual,
            factor_bytes: fh.factor.storage_bytes(),
            dense_factor_s,
            dense_solve_s,
            dense_diff,
        });
    }

    let json = render_json(q, bacc, &rows);
    write_bench_json("BENCH_solve.json", &json);
    Ok(())
}

/// Hand-rolled JSON (no serde in the offline vendor set).  Schema:
/// `{q, bacc, rows: [{n, inspector_s, factor_s, factor_leaf_s,
/// factor_merge_s, solve1_s, solveq_s, residual, factor_bytes,
/// dense_factor_s, dense_solve_s, dense_diff}], summary: {...}}` with
/// `null` where the dense baseline was skipped.  The `summary` keys are
/// unique document-wide so the `perf_smoke` gate can read them with the
/// minimal JSON reader.
fn render_json(q: usize, bacc: f64, rows: &[SolveRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"q\": {q},");
    let _ = writeln!(out, "  \"bacc\": {},", json_f64(bacc));
    out.push_str("  \"rows\": [\n");
    for (ri, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"n\": {}, \"inspector_s\": {}, \"factor_s\": {}, \"factor_leaf_s\": {}, \
             \"factor_merge_s\": {}, \"solve1_s\": {}, \"solveq_s\": {}, \"residual\": {}, \
             \"factor_bytes\": {}, \"dense_factor_s\": {}, \"dense_solve_s\": {}, \
             \"dense_diff\": {}}}",
            r.n,
            json_f64(r.inspector_s),
            json_f64(r.factor_s),
            json_f64(r.factor_leaf_s),
            json_f64(r.factor_merge_s),
            json_f64(r.solve1_s),
            json_f64(r.solveq_s),
            json_f64(r.residual),
            r.factor_bytes,
            json_opt(r.dense_factor_s),
            json_opt(r.dense_solve_s),
            json_opt(r.dense_diff),
        );
        out.push_str(if ri + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let max_residual = rows.iter().map(|r| r.residual).fold(0.0f64, f64::max);
    let last = rows.last();
    let _ = writeln!(
        out,
        "  \"summary\": {{\"max_residual\": {}, \"last_n\": {}, \"last_solve1_s\": {}, \
         \"last_solveq_s\": {}, \"last_solveq_per_rhs_s\": {}}}",
        json_f64(max_residual),
        last.map_or(0, |r| r.n),
        json_opt(last.map(|r| r.solve1_s)),
        json_opt(last.map(|r| r.solveq_s)),
        json_opt(last.map(|r| r.solveq_s / q.max(1) as f64)),
    );
    out.push_str("}\n");
    out
}
