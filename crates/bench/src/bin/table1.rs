//! Table 1: the dataset collection.
//!
//! Prints each dataset with the paper's N and d, the scaled default N used by
//! this reproduction, and basic statistics of the generated point cloud, so
//! the substitution (DESIGN.md S2) is auditable.
//!
//! ```bash
//! cargo run -p matrox-bench --release --bin table1
//! ```

use matrox_core::MatroxError;
use matrox_points::{generate, TABLE1};

fn main() -> Result<(), MatroxError> {
    println!("Table 1: datasets (paper values vs. synthetic stand-ins)\n");
    println!(
        "{:<4} {:<10} {:>9} {:>5} | {:>9} {:>5} {:>12} {:>12}",
        "ID", "data", "paper N", "d", "gen N", "d", "bbox diag", "mean nn dist"
    );
    for spec in TABLE1 {
        let pts = generate(spec.id, spec.default_n, 0);
        let idx: Vec<usize> = (0..pts.len()).collect();
        let (lo, hi) = pts.bounding_box(&idx);
        let diag: f64 = lo
            .iter()
            .zip(&hi)
            .map(|(a, b)| (b - a) * (b - a))
            .sum::<f64>()
            .sqrt();
        // Mean distance to an arbitrary near neighbour (next point index) as a
        // cheap density proxy.
        let mean_nn: f64 = (0..pts.len() - 1)
            .step_by((pts.len() / 256).max(1))
            .map(|i| pts.dist(i, i + 1))
            .sum::<f64>()
            / ((pts.len() - 1) as f64 / (pts.len() / 256).max(1) as f64);
        println!(
            "{:<4} {:<10} {:>9} {:>5} | {:>9} {:>5} {:>12.3} {:>12.4}",
            spec.problem_id,
            spec.id.name(),
            spec.paper_n,
            spec.dim,
            pts.len(),
            pts.dim(),
            diag,
            mean_nn
        );
    }
    println!("\nN is scaled down (paper: 11k-102k) so the exact K*W reference products");
    println!("used by the accuracy experiments stay tractable; every harness accepts --n.");
    Ok(())
}
