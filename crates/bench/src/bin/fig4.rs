//! Figure 4: amortizing the inspector over many evaluations (plan-once /
//! evaluate-many) versus the GOFMM-style baseline.
//!
//! The paper's central economic claim: the inspector's cost pays for itself
//! once enough queries `Y = K~ W` ride on the generated plan.  This harness
//! drives the batched [`EvalSession`]: the inspector runs **once** per
//! dataset x structure, then a Q sweep measures the batched evaluation time,
//! the marginal per-query time and the amortized per-query cost (inspection
//! included), against the GOFMM stand-in driven through the same multi-RHS
//! batched entry point.  Per sweep it reports:
//!
//! * **break-even Q** — the smallest swept Q at which MatRox's
//!   inspect-plus-evaluate total undercuts GOFMM's compress-plus-evaluate
//!   total;
//! * **amortization ratio** — amortized per-query cost at the largest Q
//!   relative to the full Q = 1 inspect+evaluate cost (≤ 0.5 is the
//!   acceptance bound at N = 2048, Q = 64);
//! * **batch-16 speedup** — one batched `evaluate(W)` with q = 16 versus 16
//!   sequential matvecs on the same session, with a bitwise-identity check.
//!
//! Results are written to `BENCH_fig4.json`; the CI `perf-smoke` job runs
//! this harness at tiny N and gates the summary against
//! `crates/bench/thresholds.json`.
//!
//! ```bash
//! cargo run -p matrox-bench --release --bin fig4 [--n 2048] [--q 64] [--datasets grid,susy]
//! ```

use matrox_bench::*;
use matrox_core::{EvalSession, InspectTimings, MatroxError};
use matrox_points::{generate, DatasetId};
use matrox_tree::Structure;
use std::fmt::Write as _;

struct SweepRow {
    q: usize,
    eval_s: f64,
    per_query_s: f64,
    amortized_per_query_s: f64,
    gofmm_eval_s: f64,
}

struct Sweep {
    dataset: String,
    structure: String,
    inspect_s: f64,
    inspect_phases: InspectTimings,
    inspect_over_exec: f64,
    panel_width: usize,
    gofmm_compress_s: f64,
    rows: Vec<SweepRow>,
    break_even_q: Option<usize>,
    break_even_q_vs_reinspect: Option<usize>,
    batch16_batched_s: f64,
    batch16_matvecs_s: f64,
    batch16_bitwise: bool,
    amortization_ratio: f64,
}

fn main() -> Result<(), MatroxError> {
    let args = HarnessArgs::parse(DEFAULT_N, 64);
    let check = pool_banner()?;
    let datasets = if args.datasets.is_empty() {
        vec![
            DatasetId::Higgs,
            DatasetId::Susy,
            DatasetId::Letter,
            DatasetId::Grid,
        ]
    } else {
        args.datasets.clone()
    };
    // Powers of two up to --q, always ending exactly at --q so the reported
    // "largest Q" figures cover the requested width even when it is not a
    // power of two.
    let q_max = args.q.max(1);
    let mut qs = vec![1usize];
    let mut next = 2usize;
    while next < q_max {
        qs.push(next);
        next *= 2;
    }
    if q_max > 1 {
        qs.push(q_max);
    }

    let mut sweeps: Vec<Sweep> = Vec::new();
    for structure in [Structure::Hss, Structure::h2b()] {
        println!(
            "\n================ Figure 4 ({}) — N = {}, plan-once / evaluate-many ================",
            structure.name(),
            args.n
        );
        println!(
            "{:<10} {:>5} | {:>9} {:>10} {:>12} | {:>9} {:>10} | {:>9}",
            "dataset",
            "Q",
            "eval(s)",
            "per-query",
            "amortized/q",
            "gofmm(s)",
            "gofmm-am/q",
            "M/G total"
        );
        for &dataset in &datasets {
            let points = generate(dataset, args.n, 0);
            let kernel = kernel_for(dataset);
            let params = params_for(structure).with_bacc(1e-5);

            // MatRox: inspector runs once; the session serves every Q below.
            let session = EvalSession::build(&points, &kernel, &params)?;
            let inspect_s = session.stats().inspect_seconds;
            // GOFMM stand-in: compression runs once, evaluations reuse it
            // through the same batched multi-RHS entry point.
            let setup = build_baseline(&points, dataset, structure, 1e-5);
            let gofmm = gofmm_session(&setup);

            let mut rows: Vec<SweepRow> = Vec::new();
            let mut break_even_q = None;
            let mut break_even_q_vs_reinspect = None;
            for &q in &qs {
                let w = random_w(args.n, q, q as u64);
                let (y, eval_s) = time_best(|| session.evaluate(&w), 1);
                y?;
                let (_, gofmm_eval_s) =
                    time_best(|| gofmm.evaluate_batch(&w, session.panel_width()), 1);
                let per_query_s = eval_s / q as f64;
                let amortized_per_query_s = (inspect_s + eval_s) / q as f64;
                let matrox_total = inspect_s + eval_s;
                let gofmm_total = setup.compression_time + gofmm_eval_s;
                if break_even_q.is_none() && matrox_total <= gofmm_total {
                    break_even_q = Some(q);
                }
                // Break-even vs re-inspection: the session (one plan, q
                // queries) undercuts re-running inspect+evaluate per query.
                if break_even_q_vs_reinspect.is_none() {
                    let reinspect_total =
                        q as f64 * (inspect_s + rows.first().map_or(eval_s, |r| r.eval_s));
                    if matrox_total <= reinspect_total && q > 1 {
                        break_even_q_vs_reinspect = Some(q);
                    }
                }
                println!(
                    "{:<10} {:>5} | {:>9.4} {:>10.6} {:>12.6} | {:>9.4} {:>10.6} | {:>9.3}",
                    dataset.name(),
                    q,
                    eval_s,
                    per_query_s,
                    amortized_per_query_s,
                    gofmm_eval_s,
                    (setup.compression_time + gofmm_eval_s) / q as f64,
                    matrox_total / gofmm_total
                );
                rows.push(SweepRow {
                    q,
                    eval_s,
                    per_query_s,
                    amortized_per_query_s,
                    gofmm_eval_s,
                });
            }

            // One batched evaluate(W) with q = 16 vs 16 sequential matvecs on
            // the same session; results must be bitwise identical.
            let w16 = random_w(args.n, 16, 1234);
            let (y_batched, batch16_batched_s) = time_best(|| session.evaluate(&w16), 2);
            let y_batched = y_batched?;
            let matvec_pass = || -> Result<Vec<f64>, MatroxError> {
                let mut out = vec![0.0f64; args.n * 16];
                for j in 0..16 {
                    let col: Vec<f64> = (0..args.n).map(|i| w16.get(i, j)).collect();
                    let y = session.evaluate_vec(&col)?;
                    for i in 0..args.n {
                        out[i * 16 + j] = y[i];
                    }
                }
                Ok(out)
            };
            let (y_cols, batch16_matvecs_s) = time_best(matvec_pass, 2);
            let y_cols = y_cols?;
            let batch16_bitwise = y_batched
                .as_slice()
                .iter()
                .zip(&y_cols)
                .all(|(a, b)| a.to_bits() == b.to_bits());

            let q_max = qs.last().copied().unwrap_or(1);
            let last_amortized = rows.last().map_or(0.0, |r| r.amortized_per_query_s);
            let q1_total = inspect_s + rows.first().map_or(0.0, |r| r.eval_s);
            let amortization_ratio = last_amortized / q1_total;
            // Inspector cost relative to one batched evaluation at the largest
            // swept Q: the "how many executor passes does one inspection cost"
            // figure gated by `fig4_max_inspect_over_exec`.
            let inspect_phases = session.stats().inspect_phases;
            let inspect_over_exec = inspect_s / rows.last().map_or(1.0, |r| r.eval_s.max(1e-12));
            println!(
                "  -> inspect {:.3}s once (panel width {}), break-even Q vs re-inspection: {}, \
                 vs GOFMM: {}; amortized/q at Q={} is {:.3}x the Q=1 total; batch-16 {:.2}x vs matvecs ({})",
                inspect_s,
                session.panel_width(),
                break_even_q_vs_reinspect.map_or("none".into(), |q: usize| q.to_string()),
                break_even_q.map_or("none".into(), |q| q.to_string()),
                q_max,
                amortization_ratio,
                batch16_matvecs_s / batch16_batched_s,
                if batch16_bitwise {
                    "bitwise identical"
                } else {
                    "MISMATCH"
                }
            );
            println!(
                "     inspect phases: partition {:.3}s, sample {:.3}s, compress {:.3}s, \
                 assemble {:.3}s; inspect / exec(Q={}) = {:.2}",
                inspect_phases.partition_seconds,
                inspect_phases.sample_seconds,
                inspect_phases.compress_seconds,
                inspect_phases.assemble_seconds,
                q_max,
                inspect_over_exec
            );

            sweeps.push(Sweep {
                dataset: dataset.name().to_string(),
                structure: structure.name().to_string(),
                inspect_s,
                inspect_phases,
                inspect_over_exec,
                panel_width: session.panel_width(),
                gofmm_compress_s: setup.compression_time,
                rows,
                break_even_q,
                break_even_q_vs_reinspect,
                batch16_batched_s,
                batch16_matvecs_s,
                batch16_bitwise,
                amortization_ratio,
            });
        }
    }

    let json = render_json(&check, args.n, &sweeps);
    write_bench_json("BENCH_fig4.json", &json);
    Ok(())
}

/// Wrap the baseline setup in its batched evaluator (compress once,
/// evaluate many — the GOFMM side of the session comparison).
fn gofmm_session(setup: &BaselineSetup) -> matrox_baselines::GofmmEvaluator<'_> {
    matrox_baselines::GofmmEvaluator::new(&setup.tree, &setup.htree, &setup.compression)
}

/// Hand-rolled JSON (no serde in the offline vendor set).  Schema:
/// `{self_check, n, sweeps: [{dataset, structure, inspect_s, panel_width,
/// gofmm_compress_s, rows: [{q, eval_s, per_query_s, amortized_per_query_s,
/// gofmm_eval_s}], break_even_q, batch16: {...}, amortization_ratio}],
/// summary: {...}}`.  The `summary` keys are unique document-wide so the
/// `perf_smoke` gate can read them with the minimal JSON reader.
fn render_json(check: &matrox_bench::PoolSelfCheck, n: usize, sweeps: &[Sweep]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"self_check\": {},", self_check_json(check));
    let _ = writeln!(out, "  \"n\": {n},");
    out.push_str("  \"sweeps\": [\n");
    for (si, s) in sweeps.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"structure\": \"{}\", \"inspect_s\": {}, \
             \"inspect_phases\": {{\"partition_s\": {}, \"sample_s\": {}, \
             \"compress_s\": {}, \"assemble_s\": {}}}, \"inspect_over_exec\": {}, \
             \"panel_width\": {}, \"gofmm_compress_s\": {}, \"rows\": [",
            s.dataset,
            s.structure,
            json_f64(s.inspect_s),
            json_f64(s.inspect_phases.partition_seconds),
            json_f64(s.inspect_phases.sample_seconds),
            json_f64(s.inspect_phases.compress_seconds),
            json_f64(s.inspect_phases.assemble_seconds),
            json_f64(s.inspect_over_exec),
            s.panel_width,
            json_f64(s.gofmm_compress_s)
        );
        for (ri, r) in s.rows.iter().enumerate() {
            let _ = write!(
                out,
                "      {{\"q\": {}, \"eval_s\": {}, \"per_query_s\": {}, \
                 \"amortized_per_query_s\": {}, \"gofmm_eval_s\": {}}}",
                r.q,
                json_f64(r.eval_s),
                json_f64(r.per_query_s),
                json_f64(r.amortized_per_query_s),
                json_f64(r.gofmm_eval_s)
            );
            out.push_str(if ri + 1 < s.rows.len() { ",\n" } else { "\n" });
        }
        let _ = writeln!(
            out,
            "    ], \"break_even_q\": {}, \"break_even_q_vs_reinspect\": {}, \
             \"batch16\": {{\"batched_s\": {}, \"matvecs_s\": {}, \
             \"speedup\": {}, \"bitwise_identical\": {}}}, \"amortization_ratio\": {}}}{}",
            s.break_even_q.map_or("null".to_string(), |q| q.to_string()),
            s.break_even_q_vs_reinspect
                .map_or("null".to_string(), |q| q.to_string()),
            json_f64(s.batch16_batched_s),
            json_f64(s.batch16_matvecs_s),
            json_f64(s.batch16_matvecs_s / s.batch16_batched_s),
            s.batch16_bitwise,
            json_f64(s.amortization_ratio),
            if si + 1 < sweeps.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    // Gate-relevant aggregates with document-unique keys.
    let max_per_query = sweeps
        .iter()
        .filter_map(|s| s.rows.last())
        .map(|r| r.per_query_s)
        .fold(0.0f64, f64::max);
    let min_batch16 = sweeps
        .iter()
        .map(|s| s.batch16_matvecs_s / s.batch16_batched_s)
        .fold(f64::INFINITY, f64::min);
    let max_amort = sweeps
        .iter()
        .map(|s| s.amortization_ratio)
        .fold(0.0f64, f64::max);
    let max_inspect_over_exec = sweeps
        .iter()
        .map(|s| s.inspect_over_exec)
        .fold(0.0f64, f64::max);
    let all_bitwise = sweeps.iter().all(|s| s.batch16_bitwise);
    let _ = writeln!(
        out,
        "  \"summary\": {{\"max_per_query_s\": {}, \"min_batch16_speedup\": {}, \
         \"max_amortization_ratio\": {}, \"max_inspect_over_exec\": {}, \"all_bitwise\": {}}}",
        json_f64(max_per_query),
        json_f64(min_batch16),
        json_f64(max_amort),
        json_f64(max_inspect_over_exec),
        all_bitwise
    );
    out.push_str("}\n");
    out
}
