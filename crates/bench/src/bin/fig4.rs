//! Figure 4: overall time (inspector + executor) of MatRox vs. the GOFMM- and
//! STRUMPACK-style baselines for growing Q, for both HSS and H²-b.
//!
//! The paper uses datasets higgs, susy, letter and grid with Q ∈ {1, 1K, 2K,
//! 4K}; this harness uses the same datasets with Q scaled in proportion to
//! the scaled N.  The expected shape: compression dominates at Q = 1 and is
//! amortized as Q grows, with MatRox's advantage growing with Q; the
//! structure-analysis + code-generation share of the inspector stays small
//! (§4.2 reports 8.1% on average).
//!
//! ```bash
//! cargo run -p matrox-bench --release --bin fig4 [--n 2048] [--q 256]
//! ```

use matrox_baselines::{DenseBaseline, StrumpackEvaluator};
use matrox_bench::*;
use matrox_points::{generate, DatasetId};
use matrox_tree::Structure;

fn main() {
    let args = HarnessArgs::parse(DEFAULT_N, DEFAULT_Q);
    let datasets = if args.datasets.is_empty() {
        vec![
            DatasetId::Higgs,
            DatasetId::Susy,
            DatasetId::Letter,
            DatasetId::Grid,
        ]
    } else {
        args.datasets.clone()
    };
    let qs = [1usize, args.q / 2, args.q, 2 * args.q];

    for structure in [Structure::Hss, Structure::h2b()] {
        println!(
            "\n================ Figure 4 ({}) — N = {} ================",
            structure.name(),
            args.n
        );
        println!(
            "{:<12} {:>6} | {:>10} {:>10} {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
            "dataset",
            "Q",
            "mrx-comp",
            "mrx-SA",
            "mrx-CG",
            "mrx-exec",
            "gofmm-cmp",
            "gofmm-ev",
            "strum-cmp",
            "strum-ev"
        );
        for &dataset in &datasets {
            let points = generate(dataset, args.n, 0);
            // MatRox inspector (once, reused over all Q).
            let (h, _p1, _p2) = inspect_split(&points, dataset, structure, 1e-5);
            let t = &h.timings;
            // Baseline compression (once).
            let setup = build_baseline(&points, dataset, structure, 1e-5);
            let strumpack = if structure == Structure::Hss {
                StrumpackEvaluator::new(&setup.tree, &setup.htree, &setup.compression).ok()
            } else {
                None
            };
            for &q in &qs {
                let w = random_w(args.n, q.max(1), q as u64);
                let (_, mrx_exec) = time_best(|| h.matmul(&w), 1);
                let (_, gofmm_ev) = time_best(|| gofmm_evaluate(&setup, &w), 1);
                let (strum_cmp, strum_ev) = match &strumpack {
                    Some(s) => {
                        let (_, t) = time_best(|| s.evaluate(&w), 1);
                        (
                            format!("{:10.3}", setup.compression_time),
                            format!("{t:10.3}"),
                        )
                    }
                    None => ("       n/a".to_string(), "       n/a".to_string()),
                };
                println!(
                    "{:<12} {:>6} | {:>10.3} {:>10.3} {:>10.3} {:>10.3} | {:>10.3} {:>10.3} | {} {}",
                    dataset.name(),
                    q.max(1),
                    t.compression().as_secs_f64(),
                    t.structure_analysis().as_secs_f64(),
                    t.codegen.as_secs_f64(),
                    mrx_exec,
                    setup.compression_time,
                    gofmm_ev,
                    strum_cmp,
                    strum_ev
                );
            }
            let frac = 100.0 * t.analysis_fraction();
            println!(
                "  -> structure analysis + codegen = {frac:.1}% of MatRox inspection (paper: ~8.1% average)"
            );
        }
    }

    // GEMM comparison of Section 4.2: overall MatRox vs the dense product at Q.
    println!("\n---- dense GEMM comparison (Q = {}) ----", args.q);
    for &dataset in &datasets {
        let points = generate(dataset, args.n, 0);
        let (h, p1, p2) = inspect_split(&points, dataset, Structure::h2b(), 1e-5);
        let w = random_w(args.n, args.q, 3);
        let (_, exec_t) = time_best(|| h.matmul(&w), 1);
        let dense = DenseBaseline::new(&points, kernel_for(dataset));
        let (_, dense_t) = time_best(|| dense.evaluate_implicit(&w), 1);
        println!(
            "{:<12} MatRox overall {:>8.3} s   GEMM {:>8.3} s   speedup {:>6.2}x",
            dataset.name(),
            p1 + p2 + exec_t,
            dense_t,
            dense_t / (p1 + p2 + exec_t)
        );
    }
}
