//! CI perf-smoke gate: checks the `BENCH_*.json` summaries written by the
//! `fig4` and `fig_solve` harnesses against the checked-in thresholds in
//! `crates/bench/thresholds.json`, and exits non-zero on any violation so
//! performance regressions fail the PR instead of waiting for a human to
//! re-run the harnesses.
//!
//! Two kinds of check:
//!
//! * **absolute times** (per-query batched evaluation, solve latencies) are
//!   allowed up to `headroom x` the threshold (default 1.5x) to absorb
//!   machine noise — the threshold records the expected value on the
//!   reference CI configuration;
//! * **ratios and invariants** (batch-16 speedup, amortization ratio,
//!   bitwise identity, solve residual) are machine-independent and checked
//!   as hard bounds.
//!
//! ```bash
//! cargo run -p matrox-bench --release --bin perf_smoke -- \
//!     [--fig4 BENCH_fig4.json] [--solve BENCH_solve.json] \
//!     [--gemm BENCH_gemm.json] [--serve BENCH_serve.json] \
//!     [--net BENCH_net.json] [--thresholds crates/bench/thresholds.json]
//! ```

use matrox_bench::{json_lookup_bool, json_lookup_number, HarnessArgs};

struct Gate {
    failures: Vec<String>,
    checks: usize,
}

impl Gate {
    fn new() -> Self {
        Gate {
            failures: Vec::new(),
            checks: 0,
        }
    }

    fn check(&mut self, name: &str, pass: bool, detail: String) {
        self.checks += 1;
        if pass {
            println!("  ok   {name}: {detail}");
        } else {
            println!("  FAIL {name}: {detail}");
            self.failures.push(format!("{name}: {detail}"));
        }
    }

    /// `measured <= threshold * headroom` (absolute wall-clock checks).
    /// Skipped (not failed) when the benchmark was produced at a different
    /// problem size than the threshold references — absolute times are only
    /// meaningful at the reference N; the ratio checks still apply.
    fn time_below(
        &mut self,
        name: &str,
        measured: Option<f64>,
        threshold: f64,
        headroom: f64,
        at_reference_n: bool,
    ) {
        if !at_reference_n {
            println!("  skip {name}: benchmark N differs from the threshold's reference N");
            return;
        }
        match measured {
            Some(m) => self.check(
                name,
                m <= threshold * headroom,
                format!("measured {m:.3e} s vs limit {threshold:.3e} s x {headroom}"),
            ),
            None => self.check(name, false, "value missing from benchmark output".into()),
        }
    }

    /// `measured >= bound` (machine-independent ratio checks).
    fn ratio_above(&mut self, name: &str, measured: Option<f64>, bound: f64) {
        match measured {
            Some(m) => self.check(
                name,
                m >= bound,
                format!("measured {m:.3} vs minimum {bound}"),
            ),
            None => self.check(name, false, "value missing from benchmark output".into()),
        }
    }

    /// `measured <= bound` (machine-independent ratio checks).
    fn ratio_below(&mut self, name: &str, measured: Option<f64>, bound: f64) {
        match measured {
            Some(m) => self.check(
                name,
                m <= bound,
                format!("measured {m:.3e} vs maximum {bound:.3e}"),
            ),
            None => self.check(name, false, "value missing from benchmark output".into()),
        }
    }
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perf_smoke: cannot read {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = HarnessArgs::parse(0, 0);
    let fig4_path = args
        .str_flag("--fig4")
        .unwrap_or_else(|| "BENCH_fig4.json".to_string());
    let solve_path = args
        .str_flag("--solve")
        .unwrap_or_else(|| "BENCH_solve.json".to_string());
    let gemm_path = args
        .str_flag("--gemm")
        .unwrap_or_else(|| "BENCH_gemm.json".to_string());
    let serve_path = args
        .str_flag("--serve")
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let net_path = args
        .str_flag("--net")
        .unwrap_or_else(|| "BENCH_net.json".to_string());
    let thresholds_path = args
        .str_flag("--thresholds")
        .unwrap_or_else(|| "crates/bench/thresholds.json".to_string());

    let thresholds = read(&thresholds_path);
    let fig4 = read(&fig4_path);
    let solve = read(&solve_path);
    let gemm = read(&gemm_path);
    let serve = read(&serve_path);
    let net = read(&net_path);
    let must = |key: &str| -> f64 {
        json_lookup_number(&thresholds, key).unwrap_or_else(|| {
            eprintln!("perf_smoke: threshold key '{key}' missing from {thresholds_path}");
            std::process::exit(2);
        })
    };
    let headroom = json_lookup_number(&thresholds, "headroom").unwrap_or(1.5);

    let mut gate = Gate::new();
    println!("perf-smoke gate (thresholds: {thresholds_path}, headroom {headroom}x)");

    let fig4_at_ref = json_lookup_number(&fig4, "n") == Some(must("fig4_reference_n"));
    let solve_at_ref = json_lookup_number(&solve, "last_n") == Some(must("solve_reference_n"));

    println!("fig4 ({fig4_path}):");
    gate.time_below(
        "fig4.per_query_batched",
        json_lookup_number(&fig4, "max_per_query_s"),
        must("fig4_max_per_query_s"),
        headroom,
        fig4_at_ref,
    );
    gate.ratio_above(
        "fig4.batch16_speedup",
        json_lookup_number(&fig4, "min_batch16_speedup"),
        must("fig4_min_batch16_speedup"),
    );
    gate.ratio_below(
        "fig4.amortization_ratio",
        json_lookup_number(&fig4, "max_amortization_ratio"),
        must("fig4_max_amortization_ratio"),
    );
    gate.ratio_below(
        "fig4.inspect_over_exec",
        json_lookup_number(&fig4, "max_inspect_over_exec"),
        must("fig4_max_inspect_over_exec"),
    );
    gate.check(
        "fig4.batched_bitwise_identity",
        json_lookup_bool(&fig4, "all_bitwise") == Some(true),
        "batched evaluate(W) vs sequential matvecs".into(),
    );

    println!("fig_solve ({solve_path}):");
    gate.ratio_below(
        "solve.residual",
        json_lookup_number(&solve, "max_residual"),
        must("solve_max_residual"),
    );
    gate.time_below(
        "solve.solve1",
        json_lookup_number(&solve, "last_solve1_s"),
        must("solve_max_solve1_s"),
        headroom,
        solve_at_ref,
    );
    gate.time_below(
        "solve.solveq_per_rhs",
        json_lookup_number(&solve, "last_solveq_per_rhs_s"),
        must("solve_max_solveq_per_rhs_s"),
        headroom,
        solve_at_ref,
    );

    println!("bench_gemm ({gemm_path}):");
    gate.ratio_below(
        "gemm.rel_err_vs_seq",
        json_lookup_number(&gemm, "max_rel_err_vs_seq"),
        must("gemm_max_rel_err"),
    );
    if json_lookup_bool(&gemm, "simd_available") == Some(true) {
        gate.ratio_above(
            "gemm.min_simd_speedup",
            json_lookup_number(&gemm, "min_simd_speedup"),
            must("gemm_min_simd_speedup"),
        );
        gate.ratio_above(
            "gemm.exec_speedup",
            json_lookup_number(&gemm, "exec_speedup"),
            must("gemm_min_exec_speedup"),
        );
        gate.ratio_below(
            "gemm.exec_rel_err",
            json_lookup_number(&gemm, "exec_rel_err"),
            must("gemm_max_rel_err"),
        );
    } else {
        println!("  skip gemm.*_speedup: host reports no SIMD kernel (scalar fallback only)");
    }

    println!("serve_load ({serve_path}):");
    // Machine-independent: one coalesced width-B evaluation must beat B
    // width-1 evaluations by a healthy margin (the whole point of the
    // serving layer), and the coalescer must actually form batches.
    gate.ratio_above(
        "serve.coalescing_throughput",
        json_lookup_number(&serve, "serve_throughput_ratio"),
        must("serve_min_throughput_ratio"),
    );
    gate.ratio_above(
        "serve.mean_batch_width",
        json_lookup_number(&serve, "serve_mean_batch_width"),
        must("serve_min_mean_batch_width"),
    );
    // Open-loop tail latency must stay within a sane multiple of the median
    // (a runaway queue shows up here first).
    gate.ratio_below(
        "serve.p99_p50",
        json_lookup_number(&serve, "serve_p99_p50_ratio"),
        must("serve_max_p99_p50_ratio"),
    );
    // The tiny-budget phase must actually exercise LRU eviction.
    gate.ratio_above(
        "serve.evictions",
        json_lookup_number(&serve, "serve_evictions"),
        must("serve_min_evictions"),
    );
    gate.check(
        "serve.bitwise_identity",
        json_lookup_bool(&serve, "serve_bitwise") == Some(true),
        "coalesced replies vs direct single-query evaluation".into(),
    );

    println!("net_load ({net_path}):");
    // The epoll + framing path may tax a fully pipelined closed loop, but
    // only so much — below this bound the front-end, not the math, is the
    // bottleneck.
    gate.ratio_above(
        "net.throughput_vs_inprocess",
        json_lookup_number(&net, "net_throughput_ratio"),
        must("net_min_throughput_ratio"),
    );
    // Open-loop tail latency over the wire: a runaway socket backlog or a
    // stalled event loop shows up here first.
    gate.ratio_below(
        "net.p99_p50",
        json_lookup_number(&net, "net_p99_p50_ratio"),
        must("net_max_p99_p50_ratio"),
    );
    // The overload phase floods a deliberately tiny dispatch queue: the
    // surplus must come back as explicit Overloaded responses (bounded
    // queue + load-shed), not be absorbed into silent buffering.
    gate.ratio_above(
        "net.shed_under_overload",
        json_lookup_number(&net, "net_shed_fraction"),
        must("net_min_shed_under_overload"),
    );
    gate.check(
        "net.bitwise_identity",
        json_lookup_bool(&net, "net_bitwise") == Some(true),
        "TCP replies vs direct single-query evaluation".into(),
    );

    println!(
        "\n{} checks, {} failure(s)",
        gate.checks,
        gate.failures.len()
    );
    if !gate.failures.is_empty() {
        for f in &gate.failures {
            eprintln!("perf-smoke violation: {f}");
        }
        std::process::exit(1);
    }
}
