//! Figure 5: executor performance breakdown (GFLOP/s) of MatRox vs. the
//! tree-based baselines for HSS (top) and H²-b (bottom).
//!
//! Reproduces the incremental bars of the figure: `CDS (seq)`, `CDS +
//! coarsen`, `CDS + block` (H²-b only), `CDS + block + coarsen + low-level`,
//! against `GOFMM TB (seq)`, `GOFMM TB + DS` and (for HSS) `STRUMPACK TB +
//! DS`.  Expected shape: coarsening is the dominant win for HSS, blocking
//! contributes only for H²-b (it is never activated for HSS), low-level
//! peeling adds a few percent.
//!
//! ```bash
//! cargo run -p matrox-bench --release --bin fig5 [--n 2048] [--q 256] [--datasets grid,unit]
//! ```

use matrox_baselines::{GofmmEvaluator, StrumpackEvaluator};
use matrox_bench::*;
use matrox_core::MatroxError;
use matrox_exec::ExecOptions;
use matrox_points::{generate, DatasetId};
use matrox_tree::Structure;

fn main() -> Result<(), MatroxError> {
    let args = HarnessArgs::parse(DEFAULT_N, DEFAULT_Q);
    let datasets = if args.datasets.is_empty() {
        DatasetId::all().to_vec()
    } else {
        args.datasets.clone()
    };

    for structure in [Structure::Hss, Structure::h2b()] {
        println!(
            "\n================ Figure 5 ({}) — GFLOP/s, N = {}, Q = {} ================",
            structure.name(),
            args.n,
            args.q
        );
        println!(
            "{:<12} {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
            "dataset",
            "CDS(seq)",
            "+coarsen",
            "+block",
            "+lowlvl",
            "gofmm-sq",
            "gofmm-DS",
            "strum-DS"
        );
        for &dataset in &datasets {
            let points = generate(dataset, args.n, 0);
            let (_, h) = build_hmatrix(dataset, args.n, structure, 1e-5)?;
            let w = random_w(args.n, args.q, 9);
            let flops = h.flops(args.q);

            let seq = ExecOptions::sequential();
            let coarsen = ExecOptions {
                parallel_tree: true,
                ..seq
            };
            let block = ExecOptions {
                parallel_near: true,
                parallel_far: true,
                parallel_tree: true,
                ..seq
            };
            let full = ExecOptions::full();

            let (y, t_seq) = time_best(|| h.matmul_with(&w, &seq), 1);
            y?;
            let (y, t_coarsen) = time_best(|| h.matmul_with(&w, &coarsen), 1);
            y?;
            let (y, t_block) = time_best(|| h.matmul_with(&w, &block), 1);
            y?;
            let (y, t_full) = time_best(|| h.matmul_with(&w, &full), 1);
            y?;

            // Tree-based baselines over the same structure.
            let setup = build_baseline(&points, dataset, structure, 1e-5);
            let gofmm = GofmmEvaluator::new(&setup.tree, &setup.htree, &setup.compression);
            let (_, t_gofmm_seq) = time_best(|| gofmm.evaluate_sequential(&w), 1);
            let (_, t_gofmm_ds) = time_best(|| gofmm.evaluate(&w), 1);
            let strum = if structure == Structure::Hss {
                StrumpackEvaluator::new(&setup.tree, &setup.htree, &setup.compression)
                    .ok()
                    .map(|s| time_best(|| s.evaluate(&w), 1).1)
            } else {
                None
            };

            println!(
                "{:<12} {:>9.2} {:>9.2} {:>9.2} {:>9.2} | {:>9.2} {:>9.2} {:>9}",
                dataset.name(),
                gflops(flops, t_seq),
                gflops(flops, t_coarsen),
                gflops(flops, t_block),
                gflops(flops, t_full),
                gflops(flops, t_gofmm_seq),
                gflops(flops, t_gofmm_ds),
                strum
                    .map(|t| format!("{:9.2}", gflops(flops, t)))
                    .unwrap_or_else(|| "      n/a".to_string())
            );
        }
    }
    println!("\nNote: '+block' also enables coarsening so the bars are cumulative like the");
    println!("paper's; for HSS block lowering is never activated by codegen (near");
    println!("interactions never exceed the block threshold), so '+block' ~= '+coarsen'.");
    Ok(())
}
