//! Figure 7: strong scalability of the executor on covtype and unit.
//!
//! The paper sweeps 1–12 cores on Haswell and 1–68 cores on KNL; this harness
//! sweeps 1, 2, 4, ... up to the host's available parallelism (DESIGN.md
//! substitution S6) and reports speedup over the single-thread run for the
//! MatRox executor, the GOFMM-style baseline, and (HSS / low-d only) the
//! STRUMPACK- and SMASH-style baselines.  Expected shape: MatRox keeps
//! scaling; the baselines flatten earlier because of synchronization and
//! load imbalance.
//!
//! Before sweeping, the harness runs a pool self-check (a trivially parallel
//! region timed at 1 vs N threads) and reports the observed pool width, so a
//! misconfigured or oversubscribed host is visible in the output instead of
//! silently flattening every curve.
//!
//! Besides the table, the sweep is written to `BENCH_fig7.json` in the
//! working directory (threads -> wall-clock -> speedup per dataset) so later
//! performance work has a machine-readable trajectory to compare against.
//!
//! ```bash
//! cargo run -p matrox-bench --release --bin fig7 [--n 4096] [--q 256] [--datasets covtype,unit]
//! ```

use matrox_baselines::{GofmmEvaluator, SmashEvaluator, StrumpackEvaluator};
use matrox_bench::*;
use matrox_core::{inspector, MatroxError};
use matrox_exec::ExecOptions;
use matrox_points::{generate, DatasetId};
use matrox_tree::Structure;
use std::fmt::Write as _;

struct SweepRow {
    threads: usize,
    matrox: f64,
    gofmm: f64,
    strumpack: Option<f64>,
    smash: Option<f64>,
}

struct Sweep {
    dataset: String,
    structure: String,
    rows: Vec<SweepRow>,
}

fn main() -> Result<(), MatroxError> {
    let args = HarnessArgs::parse(4096, DEFAULT_Q);
    let check = pool_banner()?;
    let datasets = if args.datasets.is_empty() {
        vec![DatasetId::Covtype, DatasetId::Unit]
    } else {
        args.datasets.clone()
    };
    let max_threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4);
    let mut threads = vec![1usize];
    let mut next = 2usize;
    while next <= max_threads {
        threads.push(next);
        next *= 2;
    }
    if threads.last().copied() != Some(max_threads) {
        threads.push(max_threads);
    }

    let mut sweeps: Vec<Sweep> = Vec::new();
    for &dataset in &datasets {
        let structure = Structure::h2b();
        println!(
            "\n==== Figure 7: {} (N = {}, Q = {}, structure {}) ====",
            dataset.name(),
            args.n,
            args.q,
            structure.name()
        );
        println!(
            "{:>8} | {:>11} {:>8} | {:>11} {:>8} | {:>11} {:>8} | {:>11} {:>8}",
            "threads",
            "MatRox(s)",
            "speedup",
            "GOFMM(s)",
            "speedup",
            "STRUM(s)",
            "speedup",
            "SMASH(s)",
            "speedup"
        );
        let points = generate(dataset, args.n, 0);
        let kernel = kernel_for(dataset);
        let w = random_w(args.n, args.q, 5);
        let wv: Vec<f64> = (0..args.n).map(|i| w.get(i, 0)).collect();

        let mut sweep = Sweep {
            dataset: dataset.name().to_string(),
            structure: structure.name().to_string(),
            rows: Vec::new(),
        };
        let mut base: Option<(f64, f64, Option<f64>, Option<f64>)> = None;
        for &nt in &threads {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(nt)
                .build()
                .map_err(|e| MatroxError::PoolPanic(format!("thread pool build failed: {e}")))?;
            let row = pool.install(|| -> Result<_, MatroxError> {
                let params = params_for(structure).with_partitions(nt);
                let h = inspector(&points, &kernel, &params)?;
                let opts = if nt == 1 {
                    ExecOptions::sequential()
                } else {
                    ExecOptions::from_plan(&h.plan)
                };
                let (y, t_matrox) = time_best(|| h.matmul_with(&w, &opts), 1);
                y?;

                let setup = build_baseline(&points, dataset, structure, 1e-5);
                let gofmm = GofmmEvaluator::new(&setup.tree, &setup.htree, &setup.compression);
                let (_, t_gofmm) = time_best(
                    || {
                        if nt == 1 {
                            gofmm.evaluate_sequential(&w)
                        } else {
                            gofmm.evaluate(&w)
                        }
                    },
                    1,
                );

                // STRUMPACK needs HSS; build that separately (HSS always supported).
                let hss_setup = build_baseline(&points, dataset, Structure::Hss, 1e-5);
                let t_strum = StrumpackEvaluator::new(
                    &hss_setup.tree,
                    &hss_setup.htree,
                    &hss_setup.compression,
                )
                .ok()
                .map(|s| {
                    time_best(
                        || {
                            if nt == 1 {
                                s.evaluate_sequential(&w)
                            } else {
                                s.evaluate(&w)
                            }
                        },
                        1,
                    )
                    .1
                });

                // SMASH: 1-3 d only, matvec only.
                let t_smash = SmashEvaluator::new(
                    &setup.tree,
                    &setup.htree,
                    &setup.compression,
                    points.dim(),
                )
                .ok()
                .map(|s| {
                    time_best(
                        || {
                            if nt == 1 {
                                s.evaluate_sequential(&wv)
                            } else {
                                s.evaluate(&wv)
                            }
                        },
                        1,
                    )
                    .1
                });
                Ok((t_matrox, t_gofmm, t_strum, t_smash))
            })?;
            if nt == 1 {
                base = Some(row);
            }
            // The sweep starts at 1 thread, so `base` is always set by now;
            // fall back to the row itself (speedup 1.0) if that ever changes.
            let b = base.unwrap_or(row);
            let fmt_opt = |t: Option<f64>, b: Option<f64>| match (t, b) {
                (Some(t), Some(b)) => format!("{t:>11.3} {:>8.2}", b / t),
                _ => format!("{:>11} {:>8}", "n/a", "-"),
            };
            println!(
                "{nt:>8} | {:>11.3} {:>8.2} | {:>11.3} {:>8.2} | {} | {}",
                row.0,
                b.0 / row.0,
                row.1,
                b.1 / row.1,
                fmt_opt(row.2, b.2),
                fmt_opt(row.3, b.3)
            );
            sweep.rows.push(SweepRow {
                threads: nt,
                matrox: row.0,
                gofmm: row.1,
                strumpack: row.2,
                smash: row.3,
            });
        }
        sweeps.push(sweep);
    }

    let json = render_json(&check, args.n, args.q, &sweeps);
    write_bench_json("BENCH_fig7.json", &json);
    Ok(())
}

/// Hand-rolled JSON (no serde in the offline vendor set).  Schema:
/// `{self_check, n, q, sweeps: [{dataset, structure, rows: [{threads,
/// <series>_s, <series>_speedup}]}]}` with `null` for unsupported baselines.
fn render_json(check: &PoolSelfCheck, n: usize, q: usize, sweeps: &[Sweep]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"self_check\": {},", self_check_json(check));
    let _ = writeln!(out, "  \"n\": {n},");
    let _ = writeln!(out, "  \"q\": {q},");
    out.push_str("  \"sweeps\": [\n");
    for (si, sweep) in sweeps.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"structure\": \"{}\", \"rows\": [",
            sweep.dataset, sweep.structure
        );
        let base = sweep.rows.first();
        for (ri, row) in sweep.rows.iter().enumerate() {
            let speedup = |t: f64, b: Option<f64>| json_opt(b.map(|b| b / t));
            let opt_speedup = |t: Option<f64>, b: Option<Option<f64>>| {
                json_opt(t.and_then(|t| b.flatten().map(|b| b / t)))
            };
            let _ = write!(
                out,
                "      {{\"threads\": {}, \"matrox_s\": {}, \"matrox_speedup\": {}, \
                 \"gofmm_s\": {}, \"gofmm_speedup\": {}, \"strumpack_s\": {}, \
                 \"strumpack_speedup\": {}, \"smash_s\": {}, \"smash_speedup\": {}}}",
                row.threads,
                json_f64(row.matrox),
                speedup(row.matrox, base.map(|b| b.matrox)),
                json_f64(row.gofmm),
                speedup(row.gofmm, base.map(|b| b.gofmm)),
                json_opt(row.strumpack),
                opt_speedup(row.strumpack, base.map(|b| b.strumpack)),
                json_opt(row.smash),
                opt_speedup(row.smash, base.map(|b| b.smash)),
            );
            out.push_str(if ri + 1 < sweep.rows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("    ]}");
        out.push_str(if si + 1 < sweeps.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
