//! Figure 7: strong scalability of the executor on covtype and unit.
//!
//! The paper sweeps 1–12 cores on Haswell and 1–68 cores on KNL; this harness
//! sweeps 1, 2, 4, ... up to the host's available parallelism (DESIGN.md
//! substitution S6) and reports speedup over the single-thread run for the
//! MatRox executor, the GOFMM-style baseline, and (HSS / low-d only) the
//! STRUMPACK- and SMASH-style baselines.  Expected shape: MatRox keeps
//! scaling; the baselines flatten earlier because of synchronization and
//! load imbalance.
//!
//! ```bash
//! cargo run -p matrox-bench --release --bin fig7 [--n 4096] [--q 256] [--datasets covtype,unit]
//! ```

use matrox_baselines::{GofmmEvaluator, SmashEvaluator, StrumpackEvaluator};
use matrox_bench::*;
use matrox_core::inspector;
use matrox_exec::ExecOptions;
use matrox_points::{generate, DatasetId};
use matrox_tree::Structure;

fn main() {
    let args = HarnessArgs::parse(4096, DEFAULT_Q);
    println!(
        "note: speedup columns are only meaningful with a real parallel runtime; \
         with the vendored sequential rayon stub (DESIGN.md, vendor/rayon) every \
         thread count measures the same sequential run."
    );
    let datasets = if args.datasets.is_empty() {
        vec![DatasetId::Covtype, DatasetId::Unit]
    } else {
        args.datasets.clone()
    };
    let max_threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4);
    let mut threads = vec![1usize];
    while threads.last().unwrap() * 2 <= max_threads {
        threads.push(threads.last().unwrap() * 2);
    }
    if *threads.last().unwrap() != max_threads {
        threads.push(max_threads);
    }

    for &dataset in &datasets {
        let structure = Structure::h2b();
        println!(
            "\n==== Figure 7: {} (N = {}, Q = {}, structure {}) ====",
            dataset.name(),
            args.n,
            args.q,
            structure.name()
        );
        println!(
            "{:>8} | {:>11} {:>8} | {:>11} {:>8} | {:>11} {:>8} | {:>11} {:>8}",
            "threads",
            "MatRox(s)",
            "speedup",
            "GOFMM(s)",
            "speedup",
            "STRUM(s)",
            "speedup",
            "SMASH(s)",
            "speedup"
        );
        let points = generate(dataset, args.n, 0);
        let kernel = kernel_for(dataset);
        let w = random_w(args.n, args.q, 5);
        let wv: Vec<f64> = (0..args.n).map(|i| w.get(i, 0)).collect();

        let mut base: Option<(f64, f64, Option<f64>, Option<f64>)> = None;
        for &nt in &threads {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(nt)
                .build()
                .unwrap();
            let row = pool.install(|| {
                let params = params_for(structure).with_partitions(nt);
                let h = inspector(&points, &kernel, &params);
                let opts = if nt == 1 {
                    ExecOptions::sequential()
                } else {
                    ExecOptions::from_plan(&h.plan)
                };
                let (_, t_matrox) = time_best(|| h.matmul_with(&w, &opts), 1);

                let setup = build_baseline(&points, dataset, structure, 1e-5);
                let gofmm = GofmmEvaluator::new(&setup.tree, &setup.htree, &setup.compression);
                let (_, t_gofmm) = time_best(
                    || {
                        if nt == 1 {
                            gofmm.evaluate_sequential(&w)
                        } else {
                            gofmm.evaluate(&w)
                        }
                    },
                    1,
                );

                // STRUMPACK needs HSS; build that separately (HSS always supported).
                let hss_setup = build_baseline(&points, dataset, Structure::Hss, 1e-5);
                let t_strum = StrumpackEvaluator::new(
                    &hss_setup.tree,
                    &hss_setup.htree,
                    &hss_setup.compression,
                )
                .ok()
                .map(|s| {
                    time_best(
                        || {
                            if nt == 1 {
                                s.evaluate_sequential(&w)
                            } else {
                                s.evaluate(&w)
                            }
                        },
                        1,
                    )
                    .1
                });

                // SMASH: 1-3 d only, matvec only.
                let t_smash = SmashEvaluator::new(
                    &setup.tree,
                    &setup.htree,
                    &setup.compression,
                    points.dim(),
                )
                .ok()
                .map(|s| {
                    time_best(
                        || {
                            if nt == 1 {
                                s.evaluate_sequential(&wv)
                            } else {
                                s.evaluate(&wv)
                            }
                        },
                        1,
                    )
                    .1
                });
                (t_matrox, t_gofmm, t_strum, t_smash)
            });
            if nt == 1 {
                base = Some(row);
            }
            let b = base.as_ref().unwrap();
            let fmt_opt = |t: Option<f64>, b: Option<f64>| match (t, b) {
                (Some(t), Some(b)) => format!("{t:>11.3} {:>8.2}", b / t),
                _ => format!("{:>11} {:>8}", "n/a", "-"),
            };
            println!(
                "{nt:>8} | {:>11.3} {:>8.2} | {:>11.3} {:>8.2} | {} | {}",
                row.0,
                b.0 / row.0,
                row.1,
                b.1 / row.1,
                fmt_opt(row.2, b.2),
                fmt_opt(row.3, b.3)
            );
        }
    }
}
