//! Load generator for the `matrox-serve` network front-end -> `BENCH_net.json`.
//!
//! Four phases, each against its own server + front-end pair so the
//! counters stay attributable:
//!
//! 1. **Bitwise** — a pipelined burst over TCP is compared column-by-column
//!    against reference evaluations on the same session (`net_bitwise`):
//!    framing, admission, and the socket path must be invisible to the math.
//! 2. **Closed-loop throughput** — the same burst through the in-process
//!    [`ServeHandle`](matrox_serve::server::ServeHandle) and over the wire, both
//!    fully pipelined against an
//!    identically configured reactor; the QPS ratio prices the epoll +
//!    framing overhead (`net_throughput_ratio`).
//! 3. **Open-loop latency** — queries paced at half the measured wire
//!    capacity, replies drained concurrently with `try_recv`;
//!    client-observed latencies give p50/p95/p99 (`net_p99_p50_ratio`).
//! 4. **Overload** — a burst against a front-end whose dispatch queue holds
//!    only 8 requests while the reactor sits on a long coalescing window:
//!    the surplus must come back as explicit `Overloaded` shed responses,
//!    not queue growth (`net_shed_fraction`).
//!
//! The client side is deliberately single-threaded: `NetClient::send` never
//! blocks on the reply, so one thread can put a whole burst on the wire and
//! the front-end sees the same concurrency a fleet of clients would produce.
//!
//! Flags: `--n` (problem size), `--burst` (closed-loop queries),
//! `--open-queries`, `--flood` (overload-phase queries).  The
//! `MATROX_SERVE_*` and `MATROX_NET_*` knobs (KNOBS.md) feed the base
//! configs exactly as they would a real serving process.

use matrox_bench::{json_f64, pool_banner, write_bench_json, HarnessArgs};
use matrox_core::{EvalSession, MatRoxParams, MatroxError};
use matrox_points::{generate, DatasetId, Kernel};
use matrox_serve::proto::Request;
use matrox_serve::{Model, NetClient, NetConfig, NetServer, ServeConfig, Server};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn matvec_session(n: usize, seed: u64, bandwidth: f64) -> Result<EvalSession, MatroxError> {
    let points = generate(DatasetId::Grid, n, seed);
    let kernel = Kernel::Gaussian { bandwidth };
    let params = MatRoxParams::h2b().with_bacc(1e-5).with_leaf_size(32);
    EvalSession::build(&points, &kernel, &params)
}

/// Deterministic, query-distinct right-hand side.
fn rhs(n: usize, j: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 31 + j * 7 + 1) as f64).sin())
        .collect()
}

fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Nearest-rank percentile over an already-sorted slice (`NaN` when empty).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted
        .get(idx.min(sorted.len() - 1))
        .copied()
        .unwrap_or(f64::NAN)
}

/// Spawn a reactor with one resident matvec model plus its net front-end.
fn serve_net(
    session: &EvalSession,
    serve: ServeConfig,
    net: NetConfig,
) -> Result<(Server, NetServer), MatroxError> {
    let server = Server::spawn(serve)?;
    server
        .handle()
        .insert_model("m", Model::Matvec(Arc::new(session.clone())))?;
    let net = NetServer::spawn(server.handle(), net)?;
    Ok((server, net))
}

fn query(n: usize, j: usize) -> Request {
    Request::Query {
        model: "m".to_string(),
        tenant: "t".to_string(),
        rhs: rhs(n, j),
    }
}

/// Phase 1: a pipelined TCP burst must be bitwise identical to reference
/// evaluations on a private session.
fn bitwise_phase(session: &EvalSession, n: usize) -> Result<bool, MatroxError> {
    let width = ServeConfig::from_env().max_batch.max(2);
    let (server, net) = serve_net(
        session,
        ServeConfig::from_env()
            .with_max_batch(width)
            .with_coalesce_window(Duration::from_millis(100)),
        NetConfig::from_env(),
    )?;
    let mut client = NetClient::connect(net.addr())?;
    let corrs: Vec<u64> = (0..width)
        .map(|j| client.send(&query(n, j)))
        .collect::<Result<_, _>>()?;
    let mut all_bitwise = true;
    let mut max_width = 0usize;
    for (j, corr) in corrs.into_iter().enumerate() {
        let reply = client.recv(corr)?.into_query_result()?;
        let expected = session.evaluate_vec(&rhs(n, j))?;
        all_bitwise &= bitwise_eq(&reply.y, &expected);
        max_width = max_width.max(reply.batch_width);
    }
    net.shutdown()?;
    server.shutdown()?;
    println!(
        "bitwise: {} columns over TCP, coalesced width {}, identical = {}",
        width, max_width, all_bitwise
    );
    Ok(all_bitwise && max_width > 1)
}

/// Time a fully pipelined closed-loop burst through the in-process handle.
fn closed_loop_inproc(
    session: &EvalSession,
    n: usize,
    burst: usize,
    cfg: ServeConfig,
) -> Result<f64, MatroxError> {
    let server = Server::spawn(cfg)?;
    let handle = server.handle();
    handle.insert_model("m", Model::Matvec(Arc::new(session.clone())))?;
    handle.query_wait("m", "warm", rhs(n, 0))?;

    let t0 = Instant::now();
    let pending: Vec<_> = (0..burst)
        .map(|j| handle.query("m", "t", rhs(n, j)))
        .collect();
    for p in pending {
        p.wait()?;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    server.shutdown()?;
    Ok(burst as f64 / elapsed.max(1e-12))
}

/// Time the same burst over TCP, pipelined on one connection.  The
/// admission caps are raised to the burst size so the ratio prices the
/// wire, not the shed path (phase 4 measures that separately).
fn closed_loop_wire(
    session: &EvalSession,
    n: usize,
    burst: usize,
    cfg: ServeConfig,
) -> Result<f64, MatroxError> {
    let (server, net) = serve_net(
        session,
        cfg,
        NetConfig::from_env()
            .with_max_inflight_per_conn(burst)
            .with_max_inflight_per_tenant(burst)
            .with_max_inflight_total(burst),
    )?;
    let mut client = NetClient::connect(net.addr())?;
    let warm = client.send(&query(n, 0))?;
    client.recv(warm)?.into_query_result()?;

    let t0 = Instant::now();
    let corrs: Vec<u64> = (0..burst)
        .map(|j| client.send(&query(n, j)))
        .collect::<Result<_, _>>()?;
    for corr in corrs {
        client.recv(corr)?.into_query_result()?;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    net.shutdown()?;
    server.shutdown()?;
    Ok(burst as f64 / elapsed.max(1e-12))
}

/// Phase 3: open-loop paced submission over TCP, replies drained with
/// `try_recv` between sends; returns sorted client-observed latencies.
fn open_loop_wire(
    session: &EvalSession,
    n: usize,
    queries: usize,
    target_qps: f64,
) -> Result<Vec<f64>, MatroxError> {
    let (server, net) = serve_net(
        session,
        ServeConfig::from_env(),
        NetConfig::from_env()
            .with_max_inflight_per_conn(queries)
            .with_max_inflight_per_tenant(queries)
            .with_max_inflight_total(queries),
    )?;
    let mut client = NetClient::connect(net.addr())?;

    let interval = Duration::from_secs_f64(1.0 / target_qps.max(1.0));
    let start = Instant::now();
    let mut sent_at: HashMap<u64, Instant> = HashMap::with_capacity(queries);
    let mut latencies: Vec<f64> = Vec::with_capacity(queries);
    for i in 0..queries {
        let due = start + interval * i as u32;
        let now = Instant::now();
        if now < due {
            std::thread::sleep(due - now);
        }
        let corr = client.send(&query(n, i))?;
        sent_at.insert(corr, Instant::now());
        while let Some((corr, resp)) = client.try_recv()? {
            resp.into_query_result()?;
            if let Some(t) = sent_at.remove(&corr) {
                latencies.push(t.elapsed().as_secs_f64());
            }
        }
    }
    let outstanding: Vec<u64> = sent_at.keys().copied().collect();
    for corr in outstanding {
        client.recv(corr)?.into_query_result()?;
        if let Some(t) = sent_at.remove(&corr) {
            latencies.push(t.elapsed().as_secs_f64());
        }
    }
    net.shutdown()?;
    server.shutdown()?;
    latencies.sort_by(|a, b| a.total_cmp(b));
    Ok(latencies)
}

/// Phase 4: a burst against an 8-deep dispatch queue while the reactor sits
/// on a long coalescing window.  Returns (served, shed) — everything else
/// would be silent queue growth, which is exactly what the cap forbids.
fn overload_phase(
    session: &EvalSession,
    n: usize,
    flood: usize,
) -> Result<(u64, u64), MatroxError> {
    let cap = 8;
    let (server, net) = serve_net(
        session,
        ServeConfig::from_env()
            .with_max_batch(flood.max(2))
            .with_coalesce_window(Duration::from_millis(50)),
        NetConfig::from_env()
            .with_max_inflight_per_conn(flood)
            .with_max_inflight_total(cap),
    )?;
    let mut client = NetClient::connect(net.addr())?;
    let corrs: Vec<u64> = (0..flood)
        .map(|j| client.send(&query(n, j)))
        .collect::<Result<_, _>>()?;
    let mut served = 0u64;
    let mut shed = 0u64;
    for corr in corrs {
        match client.recv(corr)?.into_query_result() {
            Ok(_) => served += 1,
            Err(MatroxError::Overloaded(_)) => shed += 1,
            Err(e) => return Err(e),
        }
    }
    let stats = net.shutdown()?;
    server.shutdown()?;
    assert_eq!(stats.shed, shed, "client and server agree on shed count");
    Ok((served, shed))
}

fn main() -> Result<(), MatroxError> {
    let args = HarnessArgs::parse(256, 1);
    let n = args.n;
    let burst = args.usize_flag("--burst", 256);
    let open_queries = args.usize_flag("--open-queries", 384);
    let flood = args.usize_flag("--flood", 128);
    let check = pool_banner()?;
    println!(
        "net_load: N = {n}, burst = {burst}, open-loop {open_queries} queries, flood = {flood}"
    );

    let session = matvec_session(n, 11, 2.0)?;

    // Phase 1: the wire must be bitwise-invisible.
    let net_bitwise = bitwise_phase(&session, n)?;

    // Phase 2: identical pipelined bursts, in-process vs over TCP.
    let cfg = ServeConfig::from_env().with_coalesce_window(Duration::from_millis(2));
    let inproc_qps = closed_loop_inproc(&session, n, burst, cfg)?;
    let wire_qps = closed_loop_wire(&session, n, burst, cfg)?;
    let throughput_ratio = wire_qps / inproc_qps.max(1e-12);
    println!(
        "closed loop: in-process {inproc_qps:.0} qps, wire {wire_qps:.0} qps \
         ({throughput_ratio:.2}x of in-process)"
    );

    // Phase 3: open loop at half the measured wire capacity — staying under
    // saturation keeps latency = window + service instead of backlog.
    let target_qps = (wire_qps * 0.5).clamp(200.0, 20_000.0);
    let latencies = open_loop_wire(&session, n, open_queries, target_qps)?;
    let p50 = percentile(&latencies, 50.0);
    let p95 = percentile(&latencies, 95.0);
    let p99 = percentile(&latencies, 99.0);
    let p99_p50 = p99 / p50.max(1e-12);
    println!(
        "open loop: target {target_qps:.0} qps, p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms \
         (p99/p50 {p99_p50:.1})",
        p50 * 1e3,
        p95 * 1e3,
        p99 * 1e3
    );

    // Phase 4: the bounded dispatch queue must shed the surplus explicitly.
    let (served, shed) = overload_phase(&session, n, flood)?;
    let shed_fraction = shed as f64 / flood.max(1) as f64;
    println!(
        "overload: {flood} queries vs an 8-deep queue -> {served} served, {shed} shed \
         ({:.0}% shed)",
        shed_fraction * 100.0
    );

    let json = format!(
        "{{\n  \"bench\": \"net_load\",\n  \"n\": {n},\n  \"threads\": {threads},\n  \
         \"closed_loop_queries\": {burst},\n  \"net_bitwise\": {net_bitwise},\n  \
         \"inproc_qps\": {inproc},\n  \"wire_qps\": {wire},\n  \
         \"net_throughput_ratio\": {ratio},\n  \"open_loop\": {{\"target_qps\": {target}, \
         \"queries\": {open_queries}, \"p50_ms\": {p50ms}, \"p95_ms\": {p95ms}, \
         \"p99_ms\": {p99ms}}},\n  \"net_p99_p50_ratio\": {p99p50},\n  \
         \"overload\": {{\"flood\": {flood}, \"served\": {served}, \"shed\": {shed}}},\n  \
         \"net_shed_fraction\": {shedfrac}\n}}\n",
        threads = check.configured_threads,
        inproc = json_f64(inproc_qps),
        wire = json_f64(wire_qps),
        ratio = json_f64(throughput_ratio),
        target = json_f64(target_qps),
        p50ms = json_f64(p50 * 1e3),
        p95ms = json_f64(p95 * 1e3),
        p99ms = json_f64(p99 * 1e3),
        p99p50 = json_f64(p99_p50),
        shedfrac = json_f64(shed_fraction),
    );
    write_bench_json("BENCH_net.json", &json);
    Ok(())
}
