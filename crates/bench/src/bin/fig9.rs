//! Figure 9: block accuracy (`bacc`) vs. overall accuracy `eps_f` of the
//! HMatrix-matrix multiplication for every dataset (H²-b structure).
//!
//! The paper's point: `bacc` is only a loose upper bound on the overall
//! accuracy — with `bacc = 1e-3`, more than half the datasets do not reach an
//! overall accuracy of `1e-3`, so users have to retune (which motivates the
//! inspector reuse of Section 5 / Figure 10).
//!
//! ```bash
//! cargo run -p matrox-bench --release --bin fig9 [--n 1024] [--q 16]
//! ```

use matrox_bench::*;
use matrox_core::{inspector_p1, inspector_p2, MatroxError};
use matrox_points::{generate, DatasetId};
use matrox_tree::Structure;

fn main() -> Result<(), MatroxError> {
    let args = HarnessArgs::parse(1024, 16);
    let datasets = if args.datasets.is_empty() {
        DatasetId::all().to_vec()
    } else {
        args.datasets.clone()
    };
    let baccs = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5];

    println!(
        "Figure 9: overall accuracy eps_f = ||K~W - KW||_F / ||KW||_F (H2-b, N = {}, Q = {})\n",
        args.n, args.q
    );
    print!("{:<12}", "dataset");
    for b in baccs {
        print!(" {:>12}", format!("bacc={b:.0e}"));
    }
    println!();

    let mut not_reached = 0usize;
    let mut total = 0usize;
    for &dataset in &datasets {
        let points = generate(dataset, args.n, 0);
        let kernel = kernel_for(dataset);
        let params = params_for(Structure::h2b());
        let p1 = inspector_p1(&points, &kernel, &params)?;
        let w = random_w(args.n, args.q, 31);
        print!("{:<12}", dataset.name());
        for &bacc in &baccs {
            let h = inspector_p2(&points, &p1, &kernel, bacc)?;
            let eps = h.overall_accuracy(&points, &w)?;
            if bacc == 1e-3 {
                total += 1;
                if eps > 1e-3 {
                    not_reached += 1;
                }
            }
            print!(" {:>12.2e}", eps);
        }
        println!();
    }
    println!(
        "\nAt bacc = 1e-3, {not_reached}/{total} datasets do not reach an overall accuracy of 1e-3"
    );
    println!("(the paper reports more than 50% — this motivates accuracy retuning).");
    Ok(())
}
