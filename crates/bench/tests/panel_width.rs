//! Validate the executor's automatic panel-width choice with the cachesim
//! locality model (DESIGN.md substitution S5): replay the panel-blocked
//! access walk at the chosen width and at the unblocked full-Q width
//! through a hierarchy sized like the heuristic's L2 budget, and require
//! the chosen width's average memory access latency to be no worse.

use matrox_bench::{build_hmatrix, executor_panel_trace};
use matrox_cachesim::CacheHierarchy;
use matrox_exec::{choose_panel_width, DEFAULT_L2_BYTES};
use matrox_points::DatasetId;
use matrox_tree::Structure;

fn hierarchy() -> CacheHierarchy {
    // 32 KiB L1 + an LLC matching the heuristic's DEFAULT_L2_BYTES budget.
    CacheHierarchy::tiny(32 * 1024, DEFAULT_L2_BYTES)
}

#[test]
fn chosen_panel_width_is_no_worse_than_full_q_walk() {
    for structure in [Structure::Hss, Structure::h2b()] {
        let (_, h) = build_hmatrix(DatasetId::Grid, 1024, structure, 1e-5).expect("build");
        let q = 256;
        let chosen = choose_panel_width(&h.plan, DEFAULT_L2_BYTES);
        assert!((8..=256).contains(&chosen));

        let full = executor_panel_trace(&h.plan, &h.tree, q, q).replay(hierarchy());
        let paneled = executor_panel_trace(&h.plan, &h.tree, q, chosen).replay(hierarchy());
        let lat_full = full.average_memory_access_latency();
        let lat_panel = paneled.average_memory_access_latency();
        assert!(
            lat_panel <= lat_full * 1.05,
            "{}: chosen panel width {chosen} has latency {lat_panel:.2} vs full-Q {lat_full:.2}",
            structure.name()
        );
    }
}

#[test]
fn panel_blocking_beats_full_q_when_panels_thrash() {
    // A deliberately small budget makes full-Q panels thrash; the heuristic
    // must react by shrinking the panel, and the shrunken walk must be
    // strictly better under the matching (tiny) hierarchy.
    let (_, h) = build_hmatrix(DatasetId::Grid, 1024, Structure::h2b(), 1e-5).expect("build");
    let small_budget = 64 * 1024;
    let chosen = choose_panel_width(&h.plan, small_budget);
    assert!(
        chosen < 256,
        "small budget must shrink the panel ({chosen})"
    );

    let tiny = || CacheHierarchy::tiny(8 * 1024, small_budget);
    let q = 256;
    let full = executor_panel_trace(&h.plan, &h.tree, q, q).replay(tiny());
    let paneled = executor_panel_trace(&h.plan, &h.tree, q, chosen).replay(tiny());
    assert!(
        paneled.average_memory_access_latency() <= full.average_memory_access_latency(),
        "panel {chosen}: {:.2} vs full {:.2}",
        paneled.average_memory_access_latency(),
        full.average_memory_access_latency()
    );
}
