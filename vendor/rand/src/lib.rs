//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, deterministic implementation of the subset of the `rand` 0.8
//! API that MatRox uses: [`Rng`], [`SeedableRng`], [`rngs::StdRng`], and
//! [`distributions::{Distribution, Uniform}`](distributions).
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not the ChaCha12 core of the real crate, but statistically
//! solid for the sampling, dataset-generation, and testing workloads here,
//! and fully reproducible from a `u64` seed.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` built from the high 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // irrelevant for the span sizes used in this workspace.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

pub mod distributions {
    use super::RngCore;

    /// A distribution that can be sampled with any RNG.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type (`f64` in `[0, 1)`, full-width
    /// integers).
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            rng.next_f64()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy> Uniform<T> {
        pub fn new(low: T, high: T) -> Self {
            Uniform { low, high }
        }
    }

    impl<T: Copy> Distribution<T> for Uniform<T>
    where
        std::ops::Range<T>: super::SampleRange<T>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            use super::SampleRange;
            (self.low..self.high).sample_single(rng)
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 — the workspace's standard RNG.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let i: usize = rng.gen_range(0..17);
            assert!(i < 17);
        }
    }

    #[test]
    fn uniform_distribution_sampling() {
        use super::distributions::{Distribution, Uniform};
        let mut rng = StdRng::seed_from_u64(3);
        let u = Uniform::new(-1.0f64, 1.0);
        for _ in 0..100 {
            let x = u.sample(&mut rng);
            assert!((-1.0..1.0).contains(&x));
        }
    }
}
