//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API that the workspace's property
//! tests use: the `Strategy` trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]` header) and
//! the `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Differences from the real crate:
//!
//! * **no shrinking** — a failing case reports the deterministic seed and
//!   case number instead of a minimized input;
//! * generation is driven by the vendored xoshiro `rand` stub with a fixed
//!   seed, so every run explores the same inputs (CI == local).

#![forbid(unsafe_code)]

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    use crate::test_runner::TestRunner;

    /// Something that can produce random values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            (**self).new_value(runner)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.source.new_value(runner))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn new_value(&self, runner: &mut TestRunner) -> T::Value {
            (self.f)(self.source.new_value(runner)).new_value(runner)
        }
    }

    pub struct Filter<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, runner: &mut TestRunner) -> S::Value {
            for _ in 0..1000 {
                let v = self.source.new_value(runner);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    rng(runner).gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64, f32);

    fn rng(runner: &mut TestRunner) -> &mut StdRng {
        runner.rng()
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(runner),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Number-of-elements specification for [`vec()`]: an exact size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for a `Vec` whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = (self.size.min..self.size.max_exclusive).new_value(runner);
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Error type carried out of a failing property body by `prop_assert!`.
    pub type TestCaseError = String;

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Holds the RNG that drives strategy generation.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    /// Default seed: every run (local and CI) explores the same inputs.
    /// Set `PROPTEST_SEED=<u64>` to explore a different stream (useful for
    /// hunting seed-dependent bugs); a reproduction only needs the seed and
    /// the case number printed in the failure message.
    const SEED: u64 = 0x5EED_CAFE_F00D_0001;

    fn seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(SEED)
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            // Under Miri every case costs ~100x native time; a handful of
            // cases still exercises each property's unsafe-relevant paths
            // (the CI Miri leg is about pointer discipline, not coverage).
            #[cfg(miri)]
            let config = ProptestConfig {
                cases: config.cases.min(4),
            };
            TestRunner {
                config,
                rng: StdRng::seed_from_u64(seed()),
            }
        }

        pub fn config(&self) -> &ProptestConfig {
            &self.config
        }

        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = config.cases;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                for case in 0..cases {
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(
                            let $pat = $crate::strategy::Strategy::new_value(
                                &($strat), &mut runner);
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} (fixed seed, no shrinking): {}",
                            stringify!($name), case, cases, msg
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y), "y out of bounds: {}", y);
        }

        #[test]
        fn vec_and_flat_map((len, v) in (1usize..8).prop_flat_map(|n| {
            crate::collection::vec(0u32..100, n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(v.len(), len);
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn proptest_reports_failures() {
        proptest! {
            fn always_fails(_x in 0usize..4) {
                prop_assert!(false, "expected failure");
            }
        }
        let r = std::panic::catch_unwind(always_fails);
        assert!(r.is_err());
    }
}
