//! Unit, stress and property tests for the vendored work-stealing pool.

use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Problem scale: the native size, or a Miri-sized stand-in (the
/// interpreter runs each op ~100x slower; tiny sizes still walk every
/// unsafe path — deque handoff, stealing, latches — which is what the
/// Miri leg checks).
const fn scaled(native: usize, miri: usize) -> usize {
    if cfg!(miri) {
        miri
    } else {
        native
    }
}

fn pool(n: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("failed to build test pool")
}

/// Recursive fork-join sum of `range`, splitting all the way down to single
/// elements — exercises deeply nested `join` (depth ~log2(len), thousands of
/// forks) and the pop-back/steal paths.
fn nested_sum(lo: u64, hi: u64) -> u64 {
    if hi - lo <= 1 {
        return lo;
    }
    let mid = lo + (hi - lo) / 2;
    let (a, b) = rayon::join(|| nested_sum(lo, mid), || nested_sum(mid, hi));
    a + b
}

#[test]
fn nested_join_on_every_pool_width() {
    let widths: &[usize] = if cfg!(miri) { &[1, 2] } else { &[1, 2, 4, 8] };
    let top = scaled(4096, 64) as u64;
    for &width in widths {
        let p = pool(width);
        let total = p.install(|| nested_sum(0, top));
        assert_eq!(
            total,
            top * (top - 1) / 2,
            "wrong sum on a {width}-wide pool"
        );
    }
}

#[test]
fn join_runs_closures_in_parallel_workers() {
    // Both closures observe the pool from inside; on a >1 pool the forked
    // side may run on a different worker, but results always come back.
    let p = pool(2);
    let h = scaled(1024, 64) as u64;
    let ((wa, ra), (wb, rb)) = p.install(|| {
        rayon::join(
            || (rayon::current_num_threads(), nested_sum(0, h / 2)),
            || (rayon::current_num_threads(), nested_sum(h / 2, h)),
        )
    });
    assert_eq!(wa, 2);
    assert_eq!(wb, 2);
    assert_eq!(ra + rb, h * (h - 1) / 2);
}

#[test]
fn panic_in_join_a_propagates() {
    let p = pool(2);
    let result = catch_unwind(AssertUnwindSafe(|| {
        p.install(|| rayon::join(|| panic!("boom-a"), || 42))
    }));
    let payload = result.unwrap_err();
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
    assert_eq!(msg, "boom-a");
    // The pool survives a propagated panic.
    assert_eq!(p.install(|| nested_sum(0, 100)), 100 * 99 / 2);
}

#[test]
fn panic_in_join_b_propagates() {
    let p = pool(2);
    let result = catch_unwind(AssertUnwindSafe(|| {
        p.install(|| rayon::join(|| 42, || panic!("boom-b")))
    }));
    let payload = result.unwrap_err();
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
    assert_eq!(msg, "boom-b");
    assert_eq!(p.install(|| nested_sum(0, 100)), 100 * 99 / 2);
}

#[test]
fn panic_from_parallel_iterator_worker_propagates_to_install_caller() {
    let p = pool(4);
    let len = scaled(1000, 64);
    let bomb = len * 2 / 3;
    let result = catch_unwind(AssertUnwindSafe(|| {
        p.install(|| {
            (0..len).into_par_iter().for_each(|i| {
                if i == bomb {
                    panic!("worker exploded at {i}");
                }
            })
        })
    }));
    assert!(result.is_err(), "panic was swallowed by the pool");
    // Pool must remain functional for subsequent work.
    let sum: usize = p.install(|| (0..100usize).into_par_iter().sum());
    assert_eq!(sum, 4950);
}

#[test]
fn par_chunks_mut_is_a_disjoint_complete_partition() {
    let p = pool(4);
    let len = scaled(10_007, 101); // prime: ragged final chunk
    let chunk = 23;
    let mut buf = vec![usize::MAX; len];
    let touched = AtomicUsize::new(0);
    p.install(|| {
        buf.par_chunks_mut(chunk).enumerate().for_each(|(ci, c)| {
            touched.fetch_add(c.len(), Ordering::Relaxed);
            for x in c {
                // Each element must still hold the sentinel: no other
                // task may have written it.
                assert_eq!(*x, usize::MAX, "chunk {ci} saw an overwritten element");
                *x = ci;
            }
        })
    });
    // Complete: every element written exactly once with its chunk index.
    assert_eq!(touched.load(Ordering::Relaxed), len);
    for (i, &v) in buf.iter().enumerate() {
        assert_eq!(v, i / chunk, "element {i} written by the wrong chunk");
    }
}

#[test]
fn stress_at_least_ten_thousand_tiny_tasks() {
    let p = pool(4);
    // ~12k leaf tasks plus ~12k interior joins, each doing almost no work:
    // stresses deque handoff, stealing and the sleep protocol rather than
    // compute.
    let count = AtomicUsize::new(0);
    fn fan_out(lo: usize, hi: usize, count: &AtomicUsize) {
        if hi - lo <= 1 {
            if hi > lo {
                count.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        let mid = lo + (hi - lo) / 2;
        rayon::join(|| fan_out(lo, mid, count), || fan_out(mid, hi, count));
    }
    let fan = scaled(12_345, 201);
    p.install(|| fan_out(0, fan, &count));
    assert_eq!(count.load(Ordering::Relaxed), fan);

    // Same scale through the iterator bridge, forced to tiny leaves.
    let bridge = scaled(20_000, 300) as u64;
    let total: u64 = p.install(|| {
        (0..bridge)
            .collect::<Vec<_>>()
            .into_par_iter()
            .with_min_len(1)
            .map(|x| x % 7)
            .sum()
    });
    let expected: u64 = (0..bridge).map(|x| x % 7).sum();
    assert_eq!(total, expected);
}

#[test]
fn collect_preserves_sequential_order() {
    let p = pool(4);
    let v: Vec<usize> = (0..scaled(5000, 128)).collect();
    let out: Vec<usize> = p.install(|| v.par_iter().map(|&x| x * 2).collect());
    let expected: Vec<usize> = v.iter().map(|&x| x * 2).collect();
    assert_eq!(out, expected);
}

#[test]
fn install_from_inside_the_pool_runs_inline() {
    let p = pool(2);
    let r = p.install(|| {
        // `install` on the same pool from one of its own workers must not
        // deadlock waiting for a free worker.
        p.install(|| nested_sum(0, 256))
    });
    assert_eq!(r, 256 * 255 / 2);
}

#[test]
fn free_functions_use_the_global_pool_outside_any_install() {
    // Exercise join/par_iter from a non-pool thread (global pool path).
    let (a, b) = rayon::join(|| 2 + 2, || "ok");
    assert_eq!((a, b), (4, "ok"));
    let n = scaled(1000, 64);
    let sum: usize = (0..n).into_par_iter().sum();
    assert_eq!(sum, n * (n - 1) / 2);
    assert!(rayon::current_num_threads() >= 1);
}

#[test]
fn build_global_is_exclusive_and_never_lies() {
    // Whether or not another test won the race to start the global pool,
    // at most one build_global in the process can report Ok, and a second
    // call must always fail.  Either way the pool is usable afterwards.
    let first = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build_global();
    let second = rayon::ThreadPoolBuilder::new()
        .num_threads(3)
        .build_global();
    assert!(second.is_err(), "two build_global calls both succeeded");
    if first.is_ok() {
        // Our width was the one installed — Ok may not be returned for a
        // pool of a different width.
        assert_eq!(rayon::current_num_threads(), 2);
    }
    let (a, b) = rayon::join(|| 20, || 22);
    assert_eq!(a + b, 42);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Parallel map/collect equals sequential map/collect for arbitrary
        /// inputs, grain settings and pool widths.
        #[test]
        fn par_map_collect_matches_seq(
            v in proptest::collection::vec(-1_000_000i64..1_000_000, 0..2000),
            min_len in 1usize..512,
            width in 1usize..5,
        ) {
            let p = pool(width);
            let v = &v[..v.len().min(scaled(usize::MAX, 64))];
            let par: Vec<i64> = p.install(|| {
                v.par_iter().with_min_len(min_len).map(|&x| x.wrapping_mul(3) - 1).collect()
            });
            let seq: Vec<i64> = v.iter().map(|&x| x.wrapping_mul(3) - 1).collect();
            prop_assert_eq!(par, seq);
        }

        /// Every element of a `par_chunks_mut` partition is written exactly
        /// once, for arbitrary lengths and chunk sizes.
        #[test]
        fn par_chunks_mut_partition_property(
            len in 0usize..4000,
            chunk in 1usize..600,
            width in 1usize..5,
        ) {
            let p = pool(width);
            let len = len.min(scaled(usize::MAX, 128));
            let mut buf = vec![0u32; len];
            p.install(|| {
                buf.par_chunks_mut(chunk).for_each(|c| {
                    for x in c {
                        *x += 1;
                    }
                })
            });
            prop_assert!(buf.iter().all(|&x| x == 1));
        }

        /// `join` computes the same pair as calling the closures directly.
        #[test]
        fn join_is_transparent(a in -10_000i64..10_000, b in -10_000i64..10_000) {
            let p = pool(2);
            let (ra, rb) = p.install(|| rayon::join(move || a * 2, move || b - 7));
            prop_assert_eq!((ra, rb), (a * 2, b - 7));
        }
    }
}
