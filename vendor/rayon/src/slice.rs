//! Parallel chunking of slices.

use crate::iter::{Chunks, ChunksMut};

/// Parallel chunking of shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Split into `&[T]` chunks of at most `chunk_size` items, iterated in
    /// parallel.
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
        Chunks::new(self, chunk_size)
    }
}

/// Parallel chunking of mutable slices.  The chunks partition the slice, so
/// each task owns a disjoint region of the output — this is the primitive the
/// GEMM kernels and the executor's permuted output buffers are built on.
pub trait ParallelSliceMut<T: Send> {
    /// Split into `&mut [T]` chunks of at most `chunk_size` items, iterated
    /// in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        ChunksMut::new(self, chunk_size)
    }
}
