//! Latches: one-shot completion signals for jobs.
//!
//! Two flavours, matching the two kinds of waiters in the pool:
//!
//! * [`SpinLatch`] — probed by a *worker* thread that keeps stealing and
//!   executing other jobs while it waits (see `WorkerThread::wait_until`).
//!   Setting it is a single atomic store; the waker side is handled by the
//!   registry-wide sleep protocol, not by the latch itself.
//! * [`LockLatch`] — blocks an *external* thread (one that is not part of the
//!   pool) on a mutex/condvar pair.  Used by `ThreadPool::install` and by
//!   `join` when called from outside any pool.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

/// Something a job can set exactly once when it finishes executing.
pub(crate) trait Latch {
    /// Signal completion.  Must be the last access the executing thread makes
    /// to the job that owns this latch: once set, the owner's stack frame may
    /// be unwound and the job freed.
    fn set(&self);
}

/// Latch probed by an actively-stealing worker.
pub(crate) struct SpinLatch {
    set: AtomicBool,
}

impl SpinLatch {
    pub(crate) fn new() -> Self {
        SpinLatch {
            set: AtomicBool::new(false),
        }
    }

    pub(crate) fn probe(&self) -> bool {
        self.set.load(Ordering::SeqCst)
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.set.store(true, Ordering::SeqCst);
    }
}

/// Latch that blocks a non-pool thread until set.
pub(crate) struct LockLatch {
    state: Mutex<bool>,
    cond: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        LockLatch {
            state: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    /// Block the calling thread until another thread calls `set`.
    pub(crate) fn wait(&self) {
        let mut done = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while !*done {
            done = self.cond.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *done = true;
        self.cond.notify_all();
    }
}
