//! Type-erased jobs that live on the stack of the thread that spawned them.
//!
//! Every unit of work the pool schedules is a [`StackJob`]: a closure plus a
//! result slot and a latch, allocated in the stack frame of `join` or
//! `ThreadPool::install`.  The spawning frame never returns before the job's
//! latch is set, so the raw pointer inside a [`JobRef`] is valid for exactly
//! as long as any queue or thief can hold it.  This is the one place the crate
//! relies on `unsafe`; everything above it (iterators, `join`, pools) is safe
//! code built on these invariants.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};

use crate::latch::Latch;

/// A type-erased pointer to a [`Job`] plus its vtable entry.
///
/// Safety contract: the pointee must outlive every copy of this `JobRef`,
/// and `execute` must be called at most once.  Both are guaranteed by the
/// blocking discipline of `join`/`install` (the owner waits on the latch
/// before its frame unwinds).
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    pointer: *const (),
    // SAFETY: carries `Job::execute`'s contract (pointee alive, called at
    // most once); discharged in `JobRef::execute`.
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: the pointee is shared across threads by design; synchronization
// is provided by the deque mutexes (handoff) and the latch (completion).
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    /// `data` must stay alive (at a stable address) until the returned ref
    /// has been executed — see the type-level contract.
    pub(crate) unsafe fn new<T: Job>(data: *const T) -> JobRef {
        JobRef {
            pointer: data as *const (),
            execute_fn: <T as Job>::execute,
        }
    }

    /// # Safety
    /// The pointee must still be alive, and this must be the only `execute`
    /// call ever made across all copies of this ref.
    pub(crate) unsafe fn execute(self) {
        // SAFETY: forwarding the caller's guarantee, which is exactly the
        // vtable entry's (`Job::execute`'s) contract.
        unsafe { (self.execute_fn)(self.pointer) }
    }
}

/// A unit of work that can be executed exactly once through a raw pointer.
pub(crate) trait Job {
    /// # Safety
    /// `this` must point to a live instance of the implementing type and must
    /// not be executed more than once.
    unsafe fn execute(this: *const ());
}

/// Result slot of a job: not run yet, a value, or a captured panic.
pub(crate) enum JobResult<R> {
    None,
    Ok(R),
    Panic(Box<dyn Any + Send>),
}

/// A job embedded in a stack frame that outlives its execution.
pub(crate) struct StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

impl<L, F, R> StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(latch: L, func: F) -> Self {
        StackJob {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::None),
        }
    }

    /// # Safety
    /// The caller must keep `self` alive (and its address stable) until the
    /// latch is set, and must ensure the returned ref is executed at most once.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        // SAFETY: forwarding the caller's liveness guarantee to JobRef::new.
        unsafe { JobRef::new(self) }
    }

    /// Consume the job after its latch has been set, yielding the closure's
    /// result or resuming the panic it exited with.
    pub(crate) fn into_result(self) -> R {
        match self.result.into_inner() {
            JobResult::None => unreachable!("job taken before execution completed"),
            JobResult::Ok(r) => r,
            JobResult::Panic(payload) => panic::resume_unwind(payload),
        }
    }
}

impl<L, F, R> Job for StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R + Send,
    R: Send,
{
    // SAFETY: contract stated on the `Job` trait declaration above.
    unsafe fn execute(this: *const ()) {
        // SAFETY: per the trait contract `this` points to a live StackJob
        // of exactly this type (the vtable entry was taken from it).
        let this = unsafe { &*(this as *const Self) };
        // SAFETY: the executing thread is the only one that ever touches
        // the `func`/`result` cells — the owner blocks on the latch and
        // reads `result` only after `set()` below (its release/acquire
        // pair is the happens-before edge), and execute-at-most-once rules
        // out a concurrent executor.
        let func = unsafe { &mut *this.func.get() }
            .take()
            .expect("StackJob executed more than once");
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(r) => JobResult::Ok(r),
            Err(payload) => JobResult::Panic(payload),
        };
        // SAFETY: same exclusive-access argument as the read above.
        unsafe { *this.result.get() = result };
        // Last access: after this store the owner may free the job.
        this.latch.set();
    }
}
