//! Offline stand-in for `rayon`.
//!
//! crates.io is unreachable from the build environment, so this vendored
//! crate provides the `rayon` API surface the workspace uses with
//! **sequential** execution: `par_iter()` and friends hand back the ordinary
//! `std` iterators, so every adapter chain (`map`, `zip`, `enumerate`,
//! `for_each`, `collect`, …) type-checks and runs unchanged, just on one
//! thread. `join` runs its closures back to back; `ThreadPool::install`
//! simply calls the closure.
//!
//! Numerical results are identical to a parallel run (the executor's
//! conflict-free scheduling makes iteration order irrelevant), which keeps
//! tests deterministic. Swapping the real rayon back in is a one-line change
//! in the workspace manifest.

/// Run two closures and return both results (sequentially, `a` first).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

/// Number of threads a real pool would use; used by heuristics only.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "pool" that executes inline on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let num_threads = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads })
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        Ok(())
    }
}

pub mod iter {
    /// `into_par_iter()` for any owned collection — plain `into_iter()`.
    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter()` for any `&T` that is iterable by reference.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'data;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
    {
        type Iter = <&'data T as IntoIterator>::IntoIter;
        type Item = <&'data T as IntoIterator>::Item;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` for any `&mut T` that is iterable by mutable reference.
    pub trait IntoParallelRefMutIterator<'data> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'data;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data + ?Sized> IntoParallelRefMutIterator<'data> for T
    where
        &'data mut T: IntoIterator,
    {
        type Iter = <&'data mut T as IntoIterator>::IntoIter;
        type Item = <&'data mut T as IntoIterator>::Item;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

pub mod slice {
    /// Parallel chunking of shared slices — sequential `chunks()` here.
    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// Parallel chunking of mutable slices — sequential `chunks_mut()` here.
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = v.clone().into_par_iter().sum();
        assert_eq!(sum, 10);
        let mut w = v;
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![2, 3, 4, 5]);
        let mut buf = [0.0f64; 6];
        buf.par_chunks_mut(2).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as f64;
            }
        });
        assert_eq!(buf, [0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn pool_installs_inline() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 7), 7);
    }
}
