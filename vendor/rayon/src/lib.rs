//! Offline stand-in for `rayon` with a **real work-stealing thread pool**.
//!
//! crates.io is unreachable from the build environment, so this vendored
//! crate implements the `rayon` API surface the workspace uses from scratch:
//!
//! * a work-stealing runtime (`registry`): one LIFO deque per worker, FIFO
//!   stealing, a global injector for external submissions, and an
//!   epoch-guarded sleep protocol so idle workers park without polling;
//! * [`join`] with genuine fork-join semantics: the second closure is pushed
//!   onto the calling worker's deque where any thread may steal it, and the
//!   caller *works while waiting* (executing other pending jobs), which makes
//!   arbitrarily nested joins deadlock-free on any pool width.  Panics in
//!   either closure propagate to the caller after both sides have completed,
//!   matching rayon;
//! * true [`ThreadPool`]s: `ThreadPoolBuilder::new().num_threads(n).build()`
//!   spawns `n` OS threads, `install` runs a closure inside the pool (the
//!   scalability harnesses pin each sweep point to its own pool this way),
//!   and dropping the pool joins its workers;
//! * parallel iterator bridges ([`iter`], [`mod@slice`]): `par_iter`,
//!   `par_iter_mut`, `into_par_iter` and `par_chunks{,_mut}` split index
//!   ranges recursively over `join` down to a grain scaled to the installed
//!   pool's width (tunable per call-site via `with_min_len`).
//!
//! Terminal operations preserve sequential element order, and the MatRox
//! executor's phases are conflict-free by construction, so numerical results
//! are identical across thread counts (see `crates/exec/tests/determinism.rs`).
//! The global pool honours `RAYON_NUM_THREADS`; swapping the real rayon back
//! in remains a one-line change in the workspace manifest.

mod job;
mod latch;
mod registry;

pub mod iter;
pub mod slice;

use std::panic::{self, AssertUnwindSafe};

use job::StackJob;
use latch::SpinLatch;
use registry::{global_registry, WorkerThread};

/// Run two closures, potentially in parallel, and return both results.
///
/// The call blocks until both closures have finished.  If either closure
/// panics, the panic is propagated to the caller — but only after the other
/// closure has completed, so no work is left dangling in the pool.  If `a`
/// and `b` both panic, `a`'s payload wins.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let worker = WorkerThread::current();
    if worker.is_null() {
        // Not on a pool thread: enter the global pool and fork from there.
        global_registry().in_worker(|| join(oper_a, oper_b))
    } else {
        // SAFETY: non-null means this thread is a pool worker; its
        // `WorkerThread` lives in the `worker_main` frame below us on this
        // very stack, so the reference cannot dangle for this call.
        join_worker(unsafe { &*worker }, oper_a, oper_b)
    }
}

fn join_worker<A, B, RA, RB>(worker: &WorkerThread, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    // Fork: publish `b` on our deque so any idle worker can steal it, then
    // run `a` ourselves (the work-first principle — `a` is executed with the
    // hot stack, `b` is what migrates).
    let job_b = StackJob::new(SpinLatch::new(), oper_b);
    // SAFETY: `job_b` lives in this frame, and `wait_until(&job_b.latch)`
    // below does not return before the job has executed — so the pushed
    // ref never outlives the job, and it is pushed (hence executed) once.
    unsafe {
        worker.push(job_b.as_job_ref());
    }

    // Catch a panic from `a` so we still wait for `b` — its StackJob points
    // into this frame and must not outlive it.
    let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));

    // Join: execute pending work (often popping `b` right back) until `b`'s
    // latch is set.
    worker.wait_until(&job_b.latch);

    match result_a {
        Ok(ra) => (ra, job_b.into_result()),
        Err(payload) => {
            // `a` panicked; `b` has completed (its result or panic payload is
            // dropped here) and the pool is quiescent for this frame.
            drop(job_b);
            panic::resume_unwind(payload)
        }
    }
}

/// Number of threads in the pool the current thread runs in, or in the
/// global pool when called from outside any pool.
pub fn current_num_threads() -> usize {
    let worker = WorkerThread::current();
    if worker.is_null() {
        registry::global_threads_hint()
    } else {
        // SAFETY: same argument as in `join`: a non-null `WorkerThread`
        // pointer refers into the live `worker_main` frame of this thread.
        unsafe { &*worker }.registry().num_threads()
    }
}

/// Error building a thread pool (e.g. the global pool was already started).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A dedicated work-stealing pool with its own worker threads.
pub struct ThreadPool {
    registry: std::sync::Arc<registry::Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Run `op` inside the pool: `join` and the parallel iterators invoked
    /// from `op` fork onto this pool's workers.  Blocks until `op` returns;
    /// panics from `op` propagate to the caller.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        self.registry.in_worker(op)
    }

    /// Number of worker threads in this pool.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.registry.num_threads())
            .finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Builder for [`ThreadPool`]s (and for configuring the global pool).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker count; `0` (the default) means one per available core.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    fn resolved_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        }
    }

    /// Spawn a dedicated pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let (registry, handles) = registry::Registry::new(self.resolved_threads());
        Ok(ThreadPool { registry, handles })
    }

    /// Build the global pool eagerly with this configuration.  Fails if it
    /// has already started (first use of `join`/`par_iter` outside any pool
    /// starts it with `RAYON_NUM_THREADS` or one worker per core).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let threads = self.resolved_threads();
        registry::build_global_pool(threads).map_err(|()| ThreadPoolBuildError)
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = v.clone().into_par_iter().sum();
        assert_eq!(sum, 10);
        let mut w = v;
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![2, 3, 4, 5]);
        let mut buf = [0.0f64; 6];
        buf.par_chunks_mut(2).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as f64;
            }
        });
        assert_eq!(buf, [0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn pool_installs_on_pool_threads() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 7), 7);
        // Work really runs on a pool worker, not on the calling thread, and
        // the pool's width is visible from inside.
        let caller = std::thread::current().id();
        let (width, ran_on) =
            pool.install(|| (super::current_num_threads(), std::thread::current().id()));
        assert_eq!(width, 4);
        assert_ne!(ran_on, caller);
    }

    #[test]
    fn range_and_zip_adapters() {
        let idx: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(idx.len(), 100);
        assert_eq!(idx[33], 99);
        let a = vec![1i64, 2, 3, 4, 5];
        let mut out = vec![0i64; 5];
        out.par_iter_mut()
            .zip(a.par_iter())
            .for_each(|(o, &x)| *o = x * x);
        assert_eq!(out, vec![1, 4, 9, 16, 25]);
    }

    #[test]
    fn with_min_len_preserves_results() {
        let v: Vec<usize> = (0..1000).collect();
        let s1: usize = v.par_iter().map(|&x| x).sum();
        let s2: usize = v.par_iter().with_min_len(128).map(|&x| x).sum();
        let s3: usize = v.par_iter().with_min_len(100_000).map(|&x| x).sum();
        assert_eq!(s1, 499_500);
        assert_eq!(s2, 499_500);
        assert_eq!(s3, 499_500);
    }
}
