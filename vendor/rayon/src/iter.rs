//! Indexed parallel iterators, bridged onto the pool with recursive `join`.
//!
//! Everything the workspace iterates in parallel is indexed (slices, `Vec`s,
//! ranges, chunked slices), so the design is a simplified version of rayon's
//! `Producer` model: a [`ParallelIterator`] knows its exact length, can split
//! itself at an index, and can degrade into an ordinary sequential iterator
//! at the leaves.  Terminal operations ([`ParallelIterator::for_each`],
//! [`ParallelIterator::collect`], [`ParallelIterator::sum`]) recursively
//! split the iterator down to a grain size scaled to the current pool width
//! and hand the halves to [`crate::join`], so splitting adapts to whichever
//! pool is installed when the terminal runs.  All terminals preserve the
//! sequential order of elements (`collect` concatenates leaf results in
//! order), which keeps the executor's conflict-free phases bitwise
//! deterministic across thread counts.
//!
//! Closures in adapters are shared across splits behind an `Arc`, so they
//! need `Send + Sync` but not `Clone`.

use std::ops::Range;
use std::sync::Arc;

/// How many splittable pieces to aim for per pool thread.  More pieces than
/// threads gives the stealing discipline room to balance uneven leaf costs;
/// the executor's `ExecOptions::grain` / `with_min_len` bounds the pieces
/// from below when leaves are too small to be worth a steal.
const PIECES_PER_THREAD: usize = 4;

/// An exactly-sized, splittable parallel iterator.
pub trait ParallelIterator: Sized + Send {
    /// Element type produced by the iterator.
    type Item: Send;
    /// Sequential iterator a leaf degrades into.
    type Seq: Iterator<Item = Self::Item>;

    /// Exact number of remaining items.
    fn par_len(&self) -> usize;

    /// Split into `[0, index)` and `[index, len)`.
    fn par_split_at(self, index: usize) -> (Self, Self);

    /// Degrade into a sequential iterator over the remaining items.
    fn par_seq(self) -> Self::Seq;

    /// Minimum number of items a leaf should keep (see `with_min_len`).
    fn par_min_len(&self) -> usize {
        1
    }

    /// Map each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Pair each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Iterate two parallel iterators in lockstep (shorter one wins).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Never split below `min` items per task; the tunable grain size for
    /// consumers whose per-item work is small.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen {
            base: self,
            min: min.max(1),
        }
    }

    /// Run `f` on every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        drive(
            self,
            &|iter| {
                for item in iter {
                    f(item);
                }
            },
            &|(), ()| (),
        );
    }

    /// Collect into any `FromIterator` container, preserving order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        let parts: Vec<Vec<Self::Item>> = drive(
            self,
            &|iter| vec![iter.collect::<Vec<Self::Item>>()],
            &|mut left, right| {
                left.extend(right);
                left
            },
        );
        parts.into_iter().flatten().collect()
    }

    /// Sum the items in parallel.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        drive(self, &|iter| iter.sum::<S>(), &|a, b| {
            [a, b].into_iter().sum::<S>()
        })
    }

    /// Count the items (exact, from the length).
    fn count(self) -> usize {
        self.par_len()
    }
}

/// Recursive fork-join bridge: split down to a pool-width-scaled grain, run
/// `leaf` sequentially at the bottom, combine with `merge` on the way up.
fn drive<P, T, LEAF, MERGE>(iterator: P, leaf: &LEAF, merge: &MERGE) -> T
where
    P: ParallelIterator,
    T: Send,
    LEAF: Fn(P::Seq) -> T + Sync,
    MERGE: Fn(T, T) -> T + Sync,
{
    let len = iterator.par_len();
    let grain = grain_for(len, iterator.par_min_len());
    drive_rec(iterator, grain, leaf, merge)
}

/// Grain for a parallel region of `len` items: recursion halves regions
/// until leaves land in `[grain, 2*grain)`, giving ~2-4 pieces per worker —
/// enough slack for stealing to balance uneven leaf costs.  Never below the
/// consumer's `min_len`, and no splitting at all on a single-thread pool.
fn grain_for(len: usize, min_len: usize) -> usize {
    let threads = crate::current_num_threads().max(1);
    if threads == 1 {
        return len.max(1);
    }
    len.div_ceil(threads * PIECES_PER_THREAD)
        .max(min_len)
        .max(1)
}

fn drive_rec<P, T, LEAF, MERGE>(iterator: P, grain: usize, leaf: &LEAF, merge: &MERGE) -> T
where
    P: ParallelIterator,
    T: Send,
    LEAF: Fn(P::Seq) -> T + Sync,
    MERGE: Fn(T, T) -> T + Sync,
{
    let len = iterator.par_len();
    // Leaf when a halving split would drop below the grain: every leaf ends
    // up in `[grain, 2*grain)` items, so `with_min_len`'s "never below `min`
    // items per task" contract holds exactly.
    if len < grain.saturating_mul(2) {
        return leaf(iterator.par_seq());
    }
    let (left, right) = iterator.par_split_at(len / 2);
    let (a, b) = crate::join(
        || drive_rec(left, grain, leaf, merge),
        || drive_rec(right, grain, leaf, merge),
    );
    merge(a, b)
}

// ---------------------------------------------------------------------------
// Base iterators
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct Iter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn par_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (Iter { slice: l }, Iter { slice: r })
    }

    fn par_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct IterMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn par_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (IterMut { slice: l }, IterMut { slice: r })
    }

    fn par_seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

/// Owning parallel iterator over a `Vec<T>`.
pub struct IntoIter<T: Send> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoIter<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;

    fn par_len(&self) -> usize {
        self.vec.len()
    }

    fn par_split_at(mut self, index: usize) -> (Self, Self) {
        let right = self.vec.split_off(index);
        (self, IntoIter { vec: right })
    }

    fn par_seq(self) -> Self::Seq {
        self.vec.into_iter()
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeIter {
    range: Range<usize>,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    type Seq = Range<usize>;

    fn par_len(&self) -> usize {
        self.range.len()
    }

    fn par_split_at(self, index: usize) -> (Self, Self) {
        let mid = self.range.start + index;
        (
            RangeIter {
                range: self.range.start..mid,
            },
            RangeIter {
                range: mid..self.range.end,
            },
        )
    }

    fn par_seq(self) -> Self::Seq {
        self.range
    }
}

/// Parallel iterator over immutable chunks of a slice (see `par_chunks`).
pub struct Chunks<'a, T: Sync> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> Chunks<'a, T> {
    pub(crate) fn new(slice: &'a [T], chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "par_chunks: chunk size must be non-zero");
        Chunks { slice, chunk_size }
    }
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn par_split_at(self, index: usize) -> (Self, Self) {
        let elems = (index * self.chunk_size).min(self.slice.len());
        let (l, r) = self.slice.split_at(elems);
        (
            Chunks {
                slice: l,
                chunk_size: self.chunk_size,
            },
            Chunks {
                slice: r,
                chunk_size: self.chunk_size,
            },
        )
    }

    fn par_seq(self) -> Self::Seq {
        self.slice.chunks(self.chunk_size)
    }
}

/// Parallel iterator over mutable chunks of a slice (see `par_chunks_mut`).
pub struct ChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ChunksMut<'a, T> {
    pub(crate) fn new(slice: &'a mut [T], chunk_size: usize) -> Self {
        assert!(
            chunk_size > 0,
            "par_chunks_mut: chunk size must be non-zero"
        );
        ChunksMut { slice, chunk_size }
    }
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn par_split_at(self, index: usize) -> (Self, Self) {
        let elems = (index * self.chunk_size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(elems);
        (
            ChunksMut {
                slice: l,
                chunk_size: self.chunk_size,
            },
            ChunksMut {
                slice: r,
                chunk_size: self.chunk_size,
            },
        )
    }

    fn par_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.chunk_size)
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// Mapping adapter; the closure is shared across splits via `Arc`.
pub struct Map<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    type Seq = SeqMap<P::Seq, F>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn par_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.par_split_at(index);
        (
            Map {
                base: l,
                f: Arc::clone(&self.f),
            },
            Map { base: r, f: self.f },
        )
    }

    fn par_seq(self) -> Self::Seq {
        SeqMap {
            iter: self.base.par_seq(),
            f: self.f,
        }
    }

    fn par_min_len(&self) -> usize {
        self.base.par_min_len()
    }
}

/// Sequential tail of [`Map`].
pub struct SeqMap<I, F> {
    iter: I,
    f: Arc<F>,
}

impl<I, F, R> Iterator for SeqMap<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> R,
{
    type Item = R;

    fn next(&mut self) -> Option<R> {
        self.iter.next().map(|item| (self.f)(item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

/// Enumerating adapter: items become `(index, item)`.
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    type Seq = SeqEnumerate<P::Seq>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn par_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.par_split_at(index);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + index,
            },
        )
    }

    fn par_seq(self) -> Self::Seq {
        SeqEnumerate {
            iter: self.base.par_seq(),
            next: self.offset,
        }
    }

    fn par_min_len(&self) -> usize {
        self.base.par_min_len()
    }
}

/// Sequential tail of [`Enumerate`], carrying the split offset.
pub struct SeqEnumerate<I> {
    iter: I,
    next: usize,
}

impl<I: Iterator> Iterator for SeqEnumerate<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.iter.next()?;
        let index = self.next;
        self.next += 1;
        Some((index, item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

/// Lockstep adapter over two parallel iterators.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }

    fn par_split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.par_split_at(index);
        let (bl, br) = self.b.par_split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn par_seq(self) -> Self::Seq {
        self.a.par_seq().zip(self.b.par_seq())
    }

    fn par_min_len(&self) -> usize {
        self.a.par_min_len().max(self.b.par_min_len())
    }
}

/// Grain-size adapter (see [`ParallelIterator::with_min_len`]).
pub struct MinLen<P> {
    base: P,
    min: usize,
}

impl<P: ParallelIterator> ParallelIterator for MinLen<P> {
    type Item = P::Item;
    type Seq = P::Seq;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn par_split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.par_split_at(index);
        (
            MinLen {
                base: l,
                min: self.min,
            },
            MinLen {
                base: r,
                min: self.min,
            },
        )
    }

    fn par_seq(self) -> Self::Seq {
        self.base.par_seq()
    }

    fn par_min_len(&self) -> usize {
        self.min.max(self.base.par_min_len())
    }
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Types that can be turned into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = IntoIter<T>;
    type Item = T;

    fn into_par_iter(self) -> Self::Iter {
        IntoIter { vec: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = Iter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> Self::Iter {
        Iter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = Iter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> Self::Iter {
        Iter { slice: self }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Iter = IterMut<'a, T>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> Self::Iter {
        IterMut { slice: self }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Iter = IterMut<'a, T>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> Self::Iter {
        IterMut {
            slice: self.as_mut_slice(),
        }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> Self::Iter {
        RangeIter { range: self }
    }
}

/// `par_iter()` for any `&T` that converts into a parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type (a shared reference).
    type Item: Send + 'data;
    /// Borrowing parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
where
    &'data T: IntoParallelIterator,
{
    type Iter = <&'data T as IntoParallelIterator>::Iter;
    type Item = <&'data T as IntoParallelIterator>::Item;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `par_iter_mut()` for any `&mut T` that converts into a parallel iterator.
pub trait IntoParallelRefMutIterator<'data> {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type (a mutable reference).
    type Item: Send + 'data;
    /// Borrowing mutable parallel iterator.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefMutIterator<'data> for T
where
    &'data mut T: IntoParallelIterator,
{
    type Iter = <&'data mut T as IntoParallelIterator>::Iter;
    type Item = <&'data mut T as IntoParallelIterator>::Item;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}
