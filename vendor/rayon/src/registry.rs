//! The work-stealing registry: worker threads, deques, injector and sleep.
//!
//! A [`Registry`] owns one mutex-protected deque per worker plus a global
//! injector queue for jobs arriving from outside the pool.  Workers treat
//! their own deque as a LIFO stack (good locality for the job they just
//! forked) and steal from the *front* of a victim's deque (FIFO — the oldest,
//! and therefore typically largest, pending subtree).  This is the classic
//! Blumofe–Leiserson discipline; the deques are `Mutex<VecDeque>` rather than
//! lock-free Chase–Lev deques, which measures within noise for MatRox's
//! coarse task granularity (thousands of GEMM-sized tasks, not millions of
//! nanosecond tasks) and keeps the vendored crate free of `unsafe` beyond the
//! stack-job handoff in `job.rs`.
//!
//! Idle workers park on a condvar guarded by an epoch counter: a worker reads
//! the epoch, registers itself as a sleeper, re-checks for work, and only
//! then sleeps if the epoch is unchanged.  Every push and every latch-set
//! bumps the epoch when sleepers are registered, which closes the
//! lost-wakeup race without timed polling (an idle pool consumes no CPU).

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

use crate::job::{JobRef, StackJob};
use crate::latch::{LockLatch, SpinLatch};

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // Jobs catch panics before they can poison a queue lock; recover anyway
    // so a bug in the pool itself cannot cascade into every consumer.
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Sleep protocol
// ---------------------------------------------------------------------------

pub(crate) struct Sleep {
    epoch: Mutex<u64>,
    cond: Condvar,
    sleepers: AtomicUsize,
}

impl Sleep {
    fn new() -> Self {
        Sleep {
            epoch: Mutex::new(0),
            cond: Condvar::new(),
            sleepers: AtomicUsize::new(0),
        }
    }

    /// Read the current epoch; pass it back to [`Sleep::sleep`] so the pair
    /// detects events that happen in between.
    pub(crate) fn epoch(&self) -> u64 {
        *lock(&self.epoch)
    }

    /// Register as a sleeper.  Must happen *before* the caller's final check
    /// for work: a notifier that reads `sleepers == 0` is then guaranteed to
    /// have published its work before our check (SeqCst total order), so we
    /// find it instead of sleeping.
    pub(crate) fn start_sleep(&self) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
    }

    /// Deregister without sleeping (work or termination was found).
    pub(crate) fn cancel_sleep(&self) {
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Park until the epoch moves past `seen`.  Caller must have called
    /// `start_sleep` and re-checked for work; returns with the sleeper
    /// deregistered.  Spurious wakeups are fine — callers loop.
    pub(crate) fn sleep(&self, seen: u64) {
        let guard = lock(&self.epoch);
        if *guard == seen {
            drop(
                self.cond
                    .wait(guard)
                    .unwrap_or_else(PoisonError::into_inner),
            );
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wake sleepers if any are registered (new work or a latch was set).
    pub(crate) fn notify(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let mut guard = lock(&self.epoch);
            *guard = guard.wrapping_add(1);
            self.cond.notify_all();
        }
    }

    /// Unconditional wake-up; used for termination.
    pub(crate) fn notify_all_force(&self) {
        let mut guard = lock(&self.epoch);
        *guard = guard.wrapping_add(1);
        self.cond.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

pub(crate) struct Registry {
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    injector: Mutex<VecDeque<JobRef>>,
    pub(crate) sleep: Sleep,
    terminating: AtomicBool,
    num_threads: usize,
}

impl Registry {
    /// Build a registry and spawn its worker threads.
    pub(crate) fn new(num_threads: usize) -> (Arc<Registry>, Vec<JoinHandle<()>>) {
        let num_threads = num_threads.max(1);
        let registry = Arc::new(Registry {
            deques: (0..num_threads)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep: Sleep::new(),
            terminating: AtomicBool::new(false),
            num_threads,
        });
        let handles = (0..num_threads)
            .map(|index| {
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("matrox-rayon-{index}"))
                    .spawn(move || worker_main(registry, index))
                    .expect("failed to spawn thread-pool worker")
            })
            .collect();
        (registry, handles)
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Queue a job from outside the pool (or from a worker of another pool).
    pub(crate) fn inject(&self, job: JobRef) {
        lock(&self.injector).push_back(job);
        self.sleep.notify();
    }

    fn pop_injected(&self) -> Option<JobRef> {
        lock(&self.injector).pop_front()
    }

    fn steal_from(&self, victim: usize) -> Option<JobRef> {
        lock(&self.deques[victim]).pop_front()
    }

    pub(crate) fn terminate(&self) {
        self.terminating.store(true, Ordering::SeqCst);
        self.sleep.notify_all_force();
    }

    fn is_terminating(&self) -> bool {
        self.terminating.load(Ordering::SeqCst)
    }

    /// Run `op` on a worker thread of this registry and return its result,
    /// propagating panics.  If the calling thread already *is* a worker of
    /// this registry, `op` runs inline.
    pub(crate) fn in_worker<OP, R>(self: &Arc<Self>, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let current = WorkerThread::current();
        if !current.is_null() {
            // SAFETY: non-null means the calling thread is a pool worker,
            // and a worker's `WorkerThread` lives in its `worker_main`
            // frame for the whole life of the thread (cleared before exit).
            let worker = unsafe { &*current };
            if Arc::ptr_eq(&worker.registry, self) {
                return op();
            }
        }
        // External thread (or a worker of a different pool): inject the op
        // and block until a worker completes it.
        let job = StackJob::new(LockLatch::new(), op);
        // SAFETY: `job` lives in this frame, which cannot unwind before
        // `latch.wait()` below returns; the ref is injected (and hence
        // executed) exactly once.
        unsafe {
            self.inject(job.as_job_ref());
        }
        job.latch.wait();
        job.into_result()
    }
}

// ---------------------------------------------------------------------------
// Worker threads
// ---------------------------------------------------------------------------

pub(crate) struct WorkerThread {
    registry: Arc<Registry>,
    index: usize,
    /// Rotating start position for steal attempts, so thieves don't all
    /// hammer victim 0.
    steal_start: Cell<usize>,
}

thread_local! {
    static WORKER: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

impl WorkerThread {
    /// The `WorkerThread` of the calling thread, or null if the caller is not
    /// a pool worker.  The pointer is valid for the lifetime of the worker's
    /// main loop (it points into that stack frame).
    pub(crate) fn current() -> *const WorkerThread {
        WORKER.with(Cell::get)
    }

    pub(crate) fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Push a forked job onto our own deque (LIFO end).
    pub(crate) fn push(&self, job: JobRef) {
        lock(&self.registry.deques[self.index]).push_back(job);
        self.registry.sleep.notify();
    }

    fn pop(&self) -> Option<JobRef> {
        lock(&self.registry.deques[self.index]).pop_back()
    }

    /// Find something to run: own deque first (LIFO), then steal from the
    /// other workers (FIFO), then the injector.
    fn find_work(&self) -> Option<JobRef> {
        if let Some(job) = self.pop() {
            return Some(job);
        }
        let n = self.registry.num_threads;
        let start = self.steal_start.get();
        self.steal_start.set(start.wrapping_add(1));
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == self.index {
                continue;
            }
            if let Some(job) = self.registry.steal_from(victim) {
                return Some(job);
            }
        }
        self.registry.pop_injected()
    }

    /// Work-stealing wait: execute pending jobs until `latch` is set.  This
    /// is what keeps nested `join`s deadlock-free — a worker whose forked job
    /// was stolen makes progress on other work (possibly executing the forked
    /// job itself if it is still in our deque) instead of blocking.
    pub(crate) fn wait_until(&self, latch: &SpinLatch) {
        while !latch.probe() {
            if let Some(job) = self.find_work() {
                // SAFETY: a ref popped/stolen from a queue is executed
                // exactly once (queues hand out each ref once), and its
                // StackJob is alive: the owner frame blocks on the job's
                // latch, which only `execute` sets.
                unsafe { job.execute() };
                // The job may have set a latch someone is sleeping on.
                self.registry.sleep.notify();
                continue;
            }
            // Nothing runnable: park until an event (push or latch-set).
            let epoch = self.registry.sleep.epoch();
            self.registry.sleep.start_sleep();
            if latch.probe() {
                self.registry.sleep.cancel_sleep();
                return;
            }
            if let Some(job) = self.find_work() {
                self.registry.sleep.cancel_sleep();
                // SAFETY: as above — queue refs are unique and their jobs
                // outlive their latch.
                unsafe { job.execute() };
                self.registry.sleep.notify();
                continue;
            }
            self.registry.sleep.sleep(epoch);
        }
    }
}

fn worker_main(registry: Arc<Registry>, index: usize) {
    let worker = WorkerThread {
        registry: Arc::clone(&registry),
        index,
        steal_start: Cell::new(index.wrapping_add(1)),
    };
    WORKER.with(|cell| cell.set(&worker as *const WorkerThread));

    loop {
        if let Some(job) = worker.find_work() {
            // SAFETY: as in `wait_until` — each queued ref is handed out
            // once, and its StackJob's owner frame is still blocked on the
            // job's latch.
            unsafe { job.execute() };
            registry.sleep.notify();
            continue;
        }
        if registry.is_terminating() {
            break;
        }
        let epoch = registry.sleep.epoch();
        registry.sleep.start_sleep();
        if registry.is_terminating() {
            registry.sleep.cancel_sleep();
            break;
        }
        if let Some(job) = worker.find_work() {
            registry.sleep.cancel_sleep();
            // SAFETY: as above.
            unsafe { job.execute() };
            registry.sleep.notify();
            continue;
        }
        registry.sleep.sleep(epoch);
    }

    WORKER.with(|cell| cell.set(std::ptr::null()));
}

// ---------------------------------------------------------------------------
// The global pool
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// Thread count the global pool uses (or will use on first use):
/// `RAYON_NUM_THREADS`, else the number of available cores.
pub(crate) fn global_threads_hint() -> usize {
    if let Some(registry) = GLOBAL.get() {
        return registry.num_threads();
    }
    default_global_threads()
}

fn default_global_threads() -> usize {
    // Cached: this sits on the `current_num_threads()` fast path of every
    // parallel region entered before (or without) the global pool being
    // spawned, and both `env::var` and `available_parallelism` (which reads
    // cgroup limits on Linux) allocate on every call.
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

fn init_global(num_threads: usize) -> Arc<Registry> {
    let (registry, handles) = Registry::new(num_threads);
    drop(handles); // detach; workers sleep (no polling) while the pool idles
    registry
}

/// The global registry, spawning its workers on first use.  Its threads are
/// detached and live for the rest of the process.
pub(crate) fn global_registry() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| init_global(default_global_threads()))
}

/// Eagerly build the global pool with the given width.  Going through the
/// `OnceLock` initializer makes the build-vs-first-use race benign: either
/// our initializer runs (the pool has exactly the requested width, `Ok`) or
/// someone else's did (the pool is already running, `Err`) — `Ok` can never
/// be returned for a pool of a different width.
pub(crate) fn build_global_pool(num_threads: usize) -> Result<(), ()> {
    let mut built_here = false;
    GLOBAL.get_or_init(|| {
        built_here = true;
        init_global(num_threads)
    });
    if built_here {
        Ok(())
    } else {
        Err(())
    }
}
