//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!` / `criterion_main!` macros and the
//! `Criterion` → `BenchmarkGroup` → `Bencher` object chain with the same
//! shapes as the real crate (so benches compile unchanged, with
//! `harness = false`), but measures with a plain wall-clock loop: each
//! `iter` routine is warmed up once and then timed for `sample_size`
//! iterations, reporting mean and minimum per-iteration time. No statistical
//! analysis, HTML reports, or command-line filtering.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Opaque-to-the-optimizer value sink, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// (total_nanos, iterations, min_nanos) recorded by the last `iter` call.
    result: Option<(u128, u64, u128)>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, also forces lazy setup
        let mut total = 0u128;
        let mut min = u128::MAX;
        let iters = self.sample_size.max(1) as u64;
        for _ in 0..iters {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed().as_nanos();
            total += elapsed;
            min = min.min(elapsed);
        }
        self.result = Some((total, iters, min));
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        self.report(&id.id, b.result);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b, input);
        self.report(&id.id, b.result);
        self
    }

    fn report(&self, id: &str, result: Option<(u128, u64, u128)>) {
        match result {
            Some((total, iters, min)) => {
                let mean = total as f64 / iters as f64;
                println!(
                    "{}/{id}: mean {} min {} ({iters} iters)",
                    self.name,
                    fmt_nanos(mean),
                    fmt_nanos(min as f64),
                );
            }
            None => println!("{}/{id}: no measurement (iter was not called)", self.name),
        }
        let _ = &self.criterion; // group borrows Criterion for its lifetime, like the real crate
    }

    pub fn finish(&mut self) {}
}

/// Top-level driver object passed to every bench target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            name,
            criterion: self,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("criterion").bench_function(id, f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &p| {
            b.iter(|| black_box(p * 2))
        });
        group.finish();
        assert_eq!(runs, 4); // 1 warm-up + 3 samples
    }
}
