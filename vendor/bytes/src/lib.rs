//! Offline stand-in for the `bytes` crate.
//!
//! Implements the cursor-style [`Buf`]/[`BufMut`] reader/writer pair plus the
//! [`Bytes`]/[`BytesMut`] buffer types, over a plain `Vec<u8>` instead of the
//! real crate's ref-counted storage. Only the little-endian accessors the
//! MatRox serializer uses are provided; reads past the end panic, exactly as
//! the real crate's `get_*` methods do.

#![forbid(unsafe_code)]

/// Read cursor over a byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "buffer underflow");
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// An immutable byte buffer with an internal read position.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    pub fn from_static(src: &'static [u8]) -> Self {
        Self::copy_from_slice(src)
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer for serialization.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u64_le(0xDEAD_BEEF);
        buf.put_f64_le(-1.25);
        buf.put_slice(b"tail");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u64_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_f64_le(), -1.25);
        assert_eq!(&b.copy_to_bytes(4)[..], b"tail");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(b"ab");
        let _ = b.get_u64_le();
    }
}
