//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Same non-poisoning API shape (`lock()` returns the guard directly); a
//! poisoned std lock is transparently recovered, matching parking_lot's
//! behaviour of not propagating panics through lock acquisition.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
