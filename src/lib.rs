//! # matrox
//!
//! A Rust reproduction of **MatRox** (Liu, Cheshmi, Soori, Strout, Mehri
//! Dehnavi — PPoPP 2020): a modular inspector–executor framework for
//! hierarchical (H²/HSS) kernel-matrix approximation that improves data
//! locality and load balance of HMatrix-matrix multiplication.
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`core`] — the inspector / executor API ([`inspector()`], [`HMatrix`],
//!   the batched [`EvalSession`], [`inspector_p1`]/[`inspector_p2`] reuse,
//!   serialization);
//! * [`points`] — point sets, kernels and the Table 1 dataset
//!   generators;
//! * [`linalg`] — the dense kernels (GEMM, pivoted QR, ID);
//! * [`tree`], [`sampling`], [`compress`], [`analysis`], [`codegen`],
//!   [`exec`] — the pipeline stages;
//! * [`factor`] — the ULV-style HSS factor + solve
//!   subsystem behind [`HMatrix::factorize`] / `solve` (`K x = b`);
//! * [`baselines`] — GOFMM-, STRUMPACK- and SMASH-style
//!   evaluators plus the dense GEMM comparator;
//! * [`cachesim`] — the software locality proxy used by the
//!   Figure 6 experiment.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! substitutions, and `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]

pub use matrox_analysis as analysis;
pub use matrox_baselines as baselines;
pub use matrox_cachesim as cachesim;
pub use matrox_codegen as codegen;
pub use matrox_compress as compress;
pub use matrox_core as core;
pub use matrox_exec as exec;
pub use matrox_factor as factor;
pub use matrox_linalg as linalg;
pub use matrox_points as points;
pub use matrox_sampling as sampling;
pub use matrox_tree as tree;

pub use matrox_core::{
    inspector, inspector_p1, inspector_p2, EvalSession, FactorError, FactoredHMatrix, HMatrix,
    InspectorP1, MatRoxParams, SessionStats,
};
pub use matrox_exec::ExecOptions;
pub use matrox_linalg::Matrix;
pub use matrox_points::{generate, DatasetId, Kernel, PointSet};
pub use matrox_tree::{PartitionMethod, Structure};
