//! # matrox
//!
//! A Rust reproduction of **MatRox** (Liu, Cheshmi, Soori, Strout, Mehri
//! Dehnavi — PPoPP 2020): a modular inspector–executor framework for
//! hierarchical (H²/HSS) kernel-matrix approximation that improves data
//! locality and load balance of HMatrix-matrix multiplication.
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`core`](matrox_core) — the inspector / executor API ([`inspector`],
//!   [`HMatrix`], [`inspector_p1`]/[`inspector_p2`] reuse, serialization);
//! * [`points`](matrox_points) — point sets, kernels and the Table 1 dataset
//!   generators;
//! * [`linalg`](matrox_linalg) — the dense kernels (GEMM, pivoted QR, ID);
//! * [`tree`](matrox_tree), [`sampling`](matrox_sampling),
//!   [`compress`](matrox_compress), [`analysis`](matrox_analysis),
//!   [`codegen`](matrox_codegen), [`exec`](matrox_exec) — the pipeline
//!   stages;
//! * [`factor`](matrox_factor) — the ULV-style HSS factor + solve
//!   subsystem behind [`HMatrix::factorize`] / `solve` (`K x = b`);
//! * [`baselines`](matrox_baselines) — GOFMM-, STRUMPACK- and SMASH-style
//!   evaluators plus the dense GEMM comparator;
//! * [`cachesim`](matrox_cachesim) — the software locality proxy used by the
//!   Figure 6 experiment.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! substitutions, and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use matrox_analysis as analysis;
pub use matrox_baselines as baselines;
pub use matrox_cachesim as cachesim;
pub use matrox_codegen as codegen;
pub use matrox_compress as compress;
pub use matrox_core as core;
pub use matrox_exec as exec;
pub use matrox_factor as factor;
pub use matrox_linalg as linalg;
pub use matrox_points as points;
pub use matrox_sampling as sampling;
pub use matrox_tree as tree;

pub use matrox_core::{
    inspector, inspector_p1, inspector_p2, FactorError, FactoredHMatrix, HMatrix, InspectorP1,
    MatRoxParams,
};
pub use matrox_exec::ExecOptions;
pub use matrox_linalg::Matrix;
pub use matrox_points::{generate, DatasetId, Kernel, PointSet};
pub use matrox_tree::{PartitionMethod, Structure};
