//! Golden accuracy-regression suite: pins upper bounds on the overall
//! accuracy `eps_f = ||K~W - KW||_F / ||KW||_F` (Figure 9's measure) for
//! every structure at fixed seeds and two block-accuracy settings, so a
//! future performance PR that silently degrades approximation quality —
//! a sloppier sampling pass, a broken ID tolerance, a CDS packing bug —
//! fails loudly here instead of shipping.
//!
//! The bounds are pinned at roughly 10x the values measured on the seed
//! implementation (recorded in the table below), leaving room for benign
//! cross-platform floating-point drift while still catching order-of-
//! magnitude regressions.  The pipeline is deterministic at fixed seeds, so
//! on any one platform the measured values are exactly reproducible.

use matrox::core::{inspector, HMatrix, MatRoxParams};
use matrox::linalg::Matrix;
use matrox::points::{generate, DatasetId, Kernel, PointSet};
use matrox::tree::Structure;
use proptest::prelude::*;
use rand::SeedableRng;

const N: usize = 1024;
const Q: usize = 4;

/// One golden entry: structure, block accuracy, pinned eps_f upper bound
/// (and, as a comment anchor, the value measured when the bound was set).
struct Golden {
    name: &'static str,
    structure: Structure,
    bacc: f64,
    max_eps: f64,
    measured: f64,
}

#[rustfmt::skip]
fn goldens() -> Vec<Golden> {
    vec![
        Golden { name: "hss/bacc=1e-3",  structure: Structure::Hss,                    bacc: 1e-3, max_eps: 6e-3, measured: 6.19e-4 },
        Golden { name: "hss/bacc=1e-7",  structure: Structure::Hss,                    bacc: 1e-7, max_eps: 4e-6, measured: 4.17e-7 },
        Golden { name: "h2b/bacc=1e-3",  structure: Structure::h2b(),                  bacc: 1e-3, max_eps: 4e-3, measured: 4.24e-4 },
        Golden { name: "h2b/bacc=1e-7",  structure: Structure::h2b(),                  bacc: 1e-7, max_eps: 2e-6, measured: 1.85e-7 },
        Golden { name: "geom/bacc=1e-3", structure: Structure::Geometric { tau: 0.65 }, bacc: 1e-3, max_eps: 1e-3, measured: 9.61e-5 },
        Golden { name: "geom/bacc=1e-7", structure: Structure::Geometric { tau: 0.65 }, bacc: 1e-7, max_eps: 1e-7, measured: 1.14e-8 },
    ]
}

fn measure(structure: Structure, bacc: f64) -> f64 {
    let pts = generate(DatasetId::Grid, N, 0);
    let kernel = Kernel::Gaussian { bandwidth: 1.0 };
    let params = MatRoxParams {
        structure,
        bacc,
        ..MatRoxParams::default()
    };
    let h = inspector(&pts, &kernel, &params).expect("inspector");
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let w = Matrix::random_uniform(N, Q, &mut rng);
    h.overall_accuracy(&pts, &w).expect("accuracy probe")
}

/// The golden measurement inside an explicitly sized pool: the parallel
/// inspector must reproduce the table's numbers at every width.
fn measure_at_width(structure: Structure, bacc: f64, threads: usize) -> f64 {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| measure(structure, bacc))
}

#[test]
fn overall_accuracy_stays_within_golden_bounds() {
    for g in goldens() {
        let eps = measure(g.structure, g.bacc);
        println!(
            "{}: eps_f = {eps:.3e} (bound {:.1e}, measured-at-pin {:.1e})",
            g.name, g.max_eps, g.measured
        );
        assert!(
            eps <= g.max_eps,
            "{}: overall accuracy regressed: eps_f = {eps:.3e} exceeds golden bound {:.1e} \
             (was {:.1e} when pinned)",
            g.name,
            g.max_eps,
            g.measured
        );
    }
}

#[test]
fn tighter_bacc_strictly_improves_golden_accuracy() {
    for structure in [
        Structure::Hss,
        Structure::h2b(),
        Structure::Geometric { tau: 0.65 },
    ] {
        let loose = measure(structure, 1e-3);
        let tight = measure(structure, 1e-7);
        assert!(
            tight < loose,
            "{}: bacc 1e-7 (eps {tight:.3e}) not better than 1e-3 (eps {loose:.3e})",
            structure.name()
        );
    }
}

/// Parallel-inspector rows of the golden table: one representative golden
/// per structure, re-measured at pool widths 1/2/4.  The parallel inspector
/// must stay inside the golden bound at every width *and* reproduce the
/// width-1 measurement to the bit — accuracy must not merely stay similar
/// across schedules, it must not move at all.
#[test]
fn golden_accuracy_is_bitwise_identical_across_pool_widths() {
    for g in goldens().into_iter().filter(|g| g.bacc == 1e-3) {
        let reference = measure_at_width(g.structure, g.bacc, 1);
        assert!(
            reference <= g.max_eps,
            "{} at 1 thread: eps_f = {reference:.3e} exceeds golden bound {:.1e}",
            g.name,
            g.max_eps
        );
        for threads in [2usize, 4] {
            let eps = measure_at_width(g.structure, g.bacc, threads);
            assert_eq!(
                eps.to_bits(),
                reference.to_bits(),
                "{} at {threads} threads: eps_f = {eps:.17e} differs from \
                 width-1 measurement {reference:.17e}",
                g.name
            );
        }
    }
}

/// Strategy: a jittered 2-D grid — regular spacing perturbed per coordinate,
/// the adversarial middle ground between the clean lattice the goldens use
/// and fully random clouds (near-duplicate points, uneven cluster sizes).
fn arb_jittered_grid() -> impl Strategy<Value = PointSet> {
    (6usize..13).prop_flat_map(|side| {
        let n = side * side;
        proptest::collection::vec(-0.45f64..0.45, n * 2).prop_map(move |jitter| {
            let mut coords = Vec::with_capacity(n * 2);
            for i in 0..side {
                for j in 0..side {
                    let at = (i * side + j) * 2;
                    coords.push(i as f64 + jitter[at]);
                    coords.push(j as f64 + jitter[at + 1]);
                }
            }
            PointSet::new(2, coords)
        })
    })
}

fn total_srank(h: &HMatrix) -> usize {
    h.plan.cds.sranks.iter().sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The parallel inspector on arbitrary jittered grids: never panics,
    /// honors the accuracy bound, and tightening `bacc` never drops ranks.
    #[test]
    fn inspector_handles_jittered_grids(pts in arb_jittered_grid()) {
        let kernel = Kernel::Gaussian { bandwidth: 1.0 };
        let params = MatRoxParams::h2b().with_bacc(1e-4).with_leaf_size(16);
        let h = inspector(&pts, &kernel, &params)
            .expect("inspector must not fail on a jittered grid");
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let w = Matrix::random_uniform(pts.len(), 2, &mut rng);
        let eps = h.overall_accuracy(&pts, &w).expect("accuracy probe");
        prop_assert!(
            eps <= 1e-2,
            "eps_f = {eps:.3e} blows the 1e-2 bound at bacc 1e-4"
        );
        // Rank monotonicity: a tighter block accuracy may only keep or grow
        // the skeletons the sampler selects.
        let tight = inspector(&pts, &kernel, &params.with_bacc(1e-8))
            .expect("inspector at tight bacc");
        prop_assert!(
            total_srank(&tight) >= total_srank(&h),
            "total srank fell from {} (bacc 1e-4) to {} (bacc 1e-8)",
            total_srank(&h),
            total_srank(&tight)
        );
    }
}
