//! Golden accuracy-regression suite: pins upper bounds on the overall
//! accuracy `eps_f = ||K~W - KW||_F / ||KW||_F` (Figure 9's measure) for
//! every structure at fixed seeds and two block-accuracy settings, so a
//! future performance PR that silently degrades approximation quality —
//! a sloppier sampling pass, a broken ID tolerance, a CDS packing bug —
//! fails loudly here instead of shipping.
//!
//! The bounds are pinned at roughly 10x the values measured on the seed
//! implementation (recorded in the table below), leaving room for benign
//! cross-platform floating-point drift while still catching order-of-
//! magnitude regressions.  The pipeline is deterministic at fixed seeds, so
//! on any one platform the measured values are exactly reproducible.

use matrox::core::{inspector, MatRoxParams};
use matrox::linalg::Matrix;
use matrox::points::{generate, DatasetId, Kernel};
use matrox::tree::Structure;
use rand::SeedableRng;

const N: usize = 1024;
const Q: usize = 4;

/// One golden entry: structure, block accuracy, pinned eps_f upper bound
/// (and, as a comment anchor, the value measured when the bound was set).
struct Golden {
    name: &'static str,
    structure: Structure,
    bacc: f64,
    max_eps: f64,
    measured: f64,
}

#[rustfmt::skip]
fn goldens() -> Vec<Golden> {
    vec![
        Golden { name: "hss/bacc=1e-3",  structure: Structure::Hss,                    bacc: 1e-3, max_eps: 6e-3, measured: 6.19e-4 },
        Golden { name: "hss/bacc=1e-7",  structure: Structure::Hss,                    bacc: 1e-7, max_eps: 4e-6, measured: 4.17e-7 },
        Golden { name: "h2b/bacc=1e-3",  structure: Structure::h2b(),                  bacc: 1e-3, max_eps: 4e-3, measured: 4.24e-4 },
        Golden { name: "h2b/bacc=1e-7",  structure: Structure::h2b(),                  bacc: 1e-7, max_eps: 2e-6, measured: 1.85e-7 },
        Golden { name: "geom/bacc=1e-3", structure: Structure::Geometric { tau: 0.65 }, bacc: 1e-3, max_eps: 1e-3, measured: 9.61e-5 },
        Golden { name: "geom/bacc=1e-7", structure: Structure::Geometric { tau: 0.65 }, bacc: 1e-7, max_eps: 1e-7, measured: 1.14e-8 },
    ]
}

fn measure(structure: Structure, bacc: f64) -> f64 {
    let pts = generate(DatasetId::Grid, N, 0);
    let kernel = Kernel::Gaussian { bandwidth: 1.0 };
    let params = MatRoxParams {
        structure,
        bacc,
        ..MatRoxParams::default()
    };
    let h = inspector(&pts, &kernel, &params).expect("inspector");
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let w = Matrix::random_uniform(N, Q, &mut rng);
    h.overall_accuracy(&pts, &w).expect("accuracy probe")
}

#[test]
fn overall_accuracy_stays_within_golden_bounds() {
    for g in goldens() {
        let eps = measure(g.structure, g.bacc);
        println!(
            "{}: eps_f = {eps:.3e} (bound {:.1e}, measured-at-pin {:.1e})",
            g.name, g.max_eps, g.measured
        );
        assert!(
            eps <= g.max_eps,
            "{}: overall accuracy regressed: eps_f = {eps:.3e} exceeds golden bound {:.1e} \
             (was {:.1e} when pinned)",
            g.name,
            g.max_eps,
            g.measured
        );
    }
}

#[test]
fn tighter_bacc_strictly_improves_golden_accuracy() {
    for structure in [
        Structure::Hss,
        Structure::h2b(),
        Structure::Geometric { tau: 0.65 },
    ] {
        let loose = measure(structure, 1e-3);
        let tight = measure(structure, 1e-7);
        assert!(
            tight < loose,
            "{}: bacc 1e-7 (eps {tight:.3e}) not better than 1e-3 (eps {loose:.3e})",
            structure.name()
        );
    }
}
