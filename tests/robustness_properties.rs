//! Property-based robustness tests: poisoned inputs (NaN/Inf in a
//! right-hand side or a point set) must surface as
//! [`MatroxError::InvalidInput`] — never a panic, never a silently wrong
//! answer — and a rejected request must leave the session in a state where
//! the next clean call returns bit-for-bit the same result it would have
//! without the rejection.

use matrox::core::MatroxError;
use matrox::{generate, inspector, DatasetId, EvalSession, Kernel, MatRoxParams, Matrix, PointSet};
use proptest::prelude::*;
use std::sync::OnceLock;

const N: usize = 128;
const Q: usize = 4;

/// One session + its clean-baseline answer, built once: session
/// construction dominates the per-case cost and the properties under test
/// are about the session's behavior *after* construction.
fn shared_session() -> &'static (EvalSession, Matrix) {
    static SESSION: OnceLock<(EvalSession, Matrix)> = OnceLock::new();
    SESSION.get_or_init(|| {
        let points = generate(DatasetId::Grid, N, 0);
        let kernel = Kernel::Gaussian { bandwidth: 2.0 };
        let params = MatRoxParams::h2b().with_bacc(1e-5).with_leaf_size(32);
        let session = EvalSession::build(&points, &kernel, &params).expect("session build");
        let w = clean_rhs(1.0);
        let baseline = session.evaluate(&w).expect("baseline evaluate");
        (session, baseline)
    })
}

fn clean_rhs(scale: f64) -> Matrix {
    let mut w = Matrix::zeros(N, Q);
    for i in 0..N {
        for j in 0..Q {
            w.set(i, j, scale * ((i + 1) as f64) / ((j + 2) as f64));
        }
    }
    w
}

fn arb_poison() -> impl Strategy<Value = f64> {
    (0usize..3).prop_map(|k| match k {
        0 => f64::NAN,
        1 => f64::INFINITY,
        _ => f64::NEG_INFINITY,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A single poisoned RHS entry, anywhere, is rejected as InvalidInput
    /// and the very next clean evaluation is bitwise identical to the
    /// pre-rejection baseline.
    #[test]
    fn poisoned_rhs_is_rejected_and_does_not_poison_the_session(
        row in 0usize..N,
        col in 0usize..Q,
        poison in arb_poison(),
    ) {
        let (session, baseline) = shared_session();
        let mut w = clean_rhs(1.0);
        w.set(row, col, poison);
        let err = session.evaluate(&w).expect_err("poisoned RHS must be rejected");
        prop_assert!(
            matches!(err, MatroxError::InvalidInput(_)),
            "wrong error for poisoned RHS: {err:?}"
        );
        let again = session.evaluate(&clean_rhs(1.0)).expect("clean evaluate");
        prop_assert_eq!(again.as_slice(), baseline.as_slice());
    }

    /// A wrong-shaped RHS is rejected the same way.
    #[test]
    fn mis_shaped_rhs_is_rejected(
        rows in (1usize..256).prop_map(|r| if r == N { N + 1 } else { r }),
    ) {
        let (session, baseline) = shared_session();
        let err = session
            .evaluate(&Matrix::filled(rows, Q, 1.0))
            .expect_err("mis-shaped RHS must be rejected");
        prop_assert!(matches!(err, MatroxError::InvalidInput(_)));
        let again = session.evaluate(&clean_rhs(1.0)).expect("clean evaluate");
        prop_assert_eq!(again.as_slice(), baseline.as_slice());
    }

    /// A point set with one poisoned coordinate is rejected by the
    /// inspector (and therefore by session construction) as InvalidInput,
    /// and inspecting the clean twin of the same set still succeeds.
    #[test]
    fn poisoned_point_sets_are_rejected_by_the_inspector(
        n in 16usize..96,
        dim in 1usize..4,
        index_seed in 0usize..4096,
        poison in arb_poison(),
    ) {
        let kernel = Kernel::Gaussian { bandwidth: 2.0 };
        let params = MatRoxParams::h2b().with_bacc(1e-4).with_leaf_size(16);
        let mut coords: Vec<f64> = (0..n * dim).map(|i| (i % 17) as f64 * 0.25).collect();
        inspector(&PointSet::new(dim, coords.clone()), &kernel, &params)
            .expect("clean point set must inspect");
        let poison_at = index_seed % coords.len();
        coords[poison_at] = poison;
        let err = inspector(&PointSet::new(dim, coords), &kernel, &params)
            .expect_err("poisoned point set must be rejected");
        prop_assert!(
            matches!(err, MatroxError::InvalidInput(_)),
            "wrong error for poisoned points: {err:?}"
        );
    }
}
