//! End-to-end acceptance for the HSS ULV factor + solve subsystem.
//!
//! On the canonical solve setting (kernel-ridge Gaussian over the 2-d grid,
//! HSS structure, `bacc = 1e-7` — see `matrox_bench::solve_setting`) the
//! solver must:
//!
//! 1. achieve a relative residual `||K x~ - b|| / ||b|| <= 1e-6` against the
//!    *exact* kernel matrix,
//! 2. match the dense Cholesky baseline's solution to the same tolerance
//!    (both factorizations share the `matrox_linalg` kernels, so the
//!    difference isolates the rank structure), and
//! 3. produce bitwise-identical solutions at 1, 2 and 4 threads.
//!
//! The full `N = 4096` configuration runs in release builds only (the dense
//! `O(N^3)` baseline is minutes-slow unoptimized); debug builds run the
//! identical checks at `N = 1024` so `cargo test` keeps the whole path
//! covered on every commit.

use matrox::baselines::DenseCholeskyBaseline;
use matrox::linalg::{frobenius_norm, Matrix};
use matrox::points::{generate, DatasetId};
use matrox::{inspector, ExecOptions};
use matrox_bench::solve_setting;

fn acceptance_at(n: usize) {
    let points = generate(DatasetId::Grid, n, 0);
    let (kernel, params) = solve_setting(n, 1e-7);
    let h = inspector(&points, &kernel, &params).expect("inspector");
    let fh = h
        .factorize()
        .expect("HSS SPD kernel-ridge matrix must factor");

    let b = Matrix::from_fn(n, 1, |i, _| ((i % 17) as f64 - 8.0) * 0.25);
    let x = fh.solve_matrix(&b).expect("solve");

    // (1) residual against the exact kernel matrix.
    let residual = fh.relative_residual(&points, &x, &b);
    assert!(
        residual <= 1e-6,
        "N = {n}: relative residual {residual:.3e} exceeds 1e-6"
    );

    // (2) agreement with the dense Cholesky baseline.
    let dense = DenseCholeskyBaseline::new(&points, &kernel).expect("dense kernel matrix is SPD");
    let xd = dense.solve_matrix(&b);
    let mut diff = xd.clone();
    diff.sub_assign(&x);
    let rel_diff = frobenius_norm(&diff) / frobenius_norm(&xd);
    assert!(
        rel_diff <= 1e-6,
        "N = {n}: solution differs from dense Cholesky by {rel_diff:.3e}"
    );

    // (3) bitwise determinism across pool widths, for factor AND solve.
    let mut runs: Vec<Matrix> = Vec::new();
    for &nt in &[1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(nt)
            .build()
            .unwrap();
        let xi = pool.install(|| {
            let f = h
                .factorize_with(&ExecOptions::full())
                .expect("factor under pool");
            f.solve_matrix_with(&b, &ExecOptions::full())
                .expect("solve")
        });
        runs.push(xi);
    }
    for (i, xi) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            xi.as_slice(),
            runs[0].as_slice(),
            "N = {n}: solution at {} threads is not bitwise identical to 1 thread",
            [1usize, 2, 4][i]
        );
    }
}

/// Debug-profile variant: identical checks, tractable size.
#[cfg(debug_assertions)]
#[test]
fn solve_acceptance_n1024() {
    acceptance_at(1024);
}

/// The full acceptance configuration (`N = 4096`, `bacc = 1e-7`).  Release
/// builds only: the dense baseline is `O(N^3)` and the exact-residual check
/// `O(N^2)`.  Run with `cargo test --release --test solve_acceptance`.
#[cfg(not(debug_assertions))]
#[test]
fn solve_acceptance_n4096() {
    acceptance_at(4096);
}
