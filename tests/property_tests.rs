//! Property-based tests (proptest) over the core data structures and
//! invariants of the MatRox pipeline.

use matrox::analysis::{build_blockset, build_coarsenset, CoarsenParams};
use matrox::linalg::{matmul, pivoted_qr, relative_error, row_id, Matrix};
use matrox::points::PointSet;
use matrox::tree::{ClusterTree, HTree, PartitionMethod, Structure};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a random point set with n in [16, 200] and d in [1, 6].
fn arb_pointset() -> impl Strategy<Value = PointSet> {
    (16usize..200, 1usize..6).prop_flat_map(|(n, d)| {
        proptest::collection::vec(-10.0f64..10.0, n * d)
            .prop_map(move |coords| PointSet::new(d, coords))
    })
}

/// Strategy: a random low-rank-ish matrix built as an outer product sum.
fn arb_low_rank() -> impl Strategy<Value = (Matrix, usize)> {
    (4usize..24, 4usize..24, 1usize..5).prop_flat_map(|(m, n, r)| {
        let r = r.min(m).min(n);
        (
            proptest::collection::vec(-1.0f64..1.0, m * r),
            proptest::collection::vec(-1.0f64..1.0, r * n),
        )
            .prop_map(move |(a, b)| {
                let a = Matrix::from_vec(m, r, a);
                let b = Matrix::from_vec(r, n, b);
                (matmul(&a, &b), r)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn qr_reconstructs_any_matrix((a, _r) in arb_low_rank()) {
        let f = pivoted_qr(&a, 0.0, usize::MAX);
        let rec = f.reconstruct();
        prop_assert!(relative_error(&rec, &a) < 1e-9);
    }

    #[test]
    fn qr_rank_never_exceeds_true_rank((a, r) in arb_low_rank()) {
        let f = pivoted_qr(&a, 1e-9, usize::MAX);
        prop_assert!(f.rank <= r, "detected rank {} exceeds construction rank {r}", f.rank);
    }

    #[test]
    fn row_id_respects_tolerance((a, _r) in arb_low_rank()) {
        let tol = 1e-8;
        let id = row_id(&a, tol, usize::MAX);
        let skel = a.gather_rows(&id.skeleton);
        let rec = matmul(&id.interp, &skel);
        prop_assert!(relative_error(&rec, &a) < 1e-5);
        // Skeleton indices are unique and within bounds.
        let set: HashSet<_> = id.skeleton.iter().collect();
        prop_assert_eq!(set.len(), id.skeleton.len());
        prop_assert!(id.skeleton.iter().all(|&i| i < a.rows()));
    }

    #[test]
    fn cluster_tree_is_a_partition(points in arb_pointset(), leaf in 1usize..32) {
        let tree = ClusterTree::build(&points, PartitionMethod::Auto, leaf, 7);
        // perm is a permutation of 0..n
        let mut sorted = tree.perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..points.len()).collect::<Vec<_>>());
        // leaves tile the point range and respect the leaf size (unless the
        // whole set is one leaf)
        let leaves = tree.leaves();
        let total: usize = leaves.iter().map(|&l| tree.nodes[l].num_points()).sum();
        prop_assert_eq!(total, points.len());
        for &l in &leaves {
            prop_assert!(tree.nodes[l].num_points() <= leaf.max(points.len()));
        }
    }

    #[test]
    fn htree_covers_every_leaf_pair_exactly_once(points in arb_pointset(), tau in 0.3f64..3.0) {
        let tree = ClusterTree::build(&points, PartitionMethod::Auto, 8, 3);
        let htree = HTree::build(&tree, Structure::Geometric { tau });
        let leaves = tree.leaves();
        let ancestors = |mut x: usize| -> Vec<usize> {
            let mut v = vec![x];
            while let Some(p) = tree.nodes[x].parent { v.push(p); x = p; }
            v
        };
        for &la in &leaves {
            for &lb in &leaves {
                let mut count = 0;
                if htree.near[la].contains(&lb) { count += 1; }
                for &aa in &ancestors(la) {
                    for &ab in &ancestors(lb) {
                        if htree.far[aa].contains(&ab) { count += 1; }
                    }
                }
                prop_assert_eq!(count, 1, "pair ({}, {}) covered {} times", la, lb, count);
            }
        }
    }

    #[test]
    fn blockset_groups_never_share_targets(
        interactions in proptest::collection::vec((1usize..64, 1usize..64), 1..200),
        blocksize in 1usize..8,
    ) {
        let bs = build_blockset(&interactions, 64, blocksize);
        // every interaction appears exactly as often as in the input
        let mut input = interactions.clone();
        input.sort_unstable();
        let mut output: Vec<_> = bs.iter().collect();
        output.sort_unstable();
        prop_assert_eq!(input, output);
        // no target node is split across groups
        let mut owner = std::collections::HashMap::new();
        for (g, group) in bs.groups.iter().enumerate() {
            for &(i, _) in group {
                let prev = owner.insert(i, g);
                if let Some(p) = prev { prop_assert_eq!(p, g); }
            }
        }
    }

    #[test]
    fn coarsenset_is_a_topological_partition(points in arb_pointset(), p in 1usize..9, agg in 1usize..4) {
        let tree = ClusterTree::build(&points, PartitionMethod::Auto, 4, 11);
        let sranks: Vec<usize> = tree.nodes.iter().map(|n| if n.is_leaf() { n.num_points() } else { 4 }).collect();
        let cs = build_coarsenset(&tree, &sranks, &CoarsenParams { p, agg });
        if tree.num_nodes() > 1 {
            // every non-root node appears exactly once
            let all = cs.all_nodes();
            let set: HashSet<_> = all.iter().copied().collect();
            prop_assert_eq!(all.len(), set.len());
            prop_assert_eq!(set.len(), tree.num_nodes() - 1);
            // children never live in a higher coarsen level than their parent
            let mut level_of = vec![usize::MAX; tree.num_nodes()];
            for (cl, parts) in cs.levels.iter().enumerate() {
                for part in parts { for &n in part { level_of[n] = cl; } }
            }
            for id in 1..tree.num_nodes() {
                if let Some((l, r)) = tree.nodes[id].children {
                    prop_assert!(level_of[l] <= level_of[id]);
                    prop_assert!(level_of[r] <= level_of[id]);
                }
            }
            // partitions per level bounded by p
            for parts in &cs.levels { prop_assert!(parts.len() <= p.max(1)); }
        }
    }
}
