//! Cross-crate integration tests: the full inspector/executor pipeline
//! against exact dense products, agreement between every evaluation strategy,
//! serialization, and inspector reuse.

use matrox::baselines::{DenseBaseline, GofmmEvaluator, SmashEvaluator, StrumpackEvaluator};
use matrox::compress::{compress, reference_evaluate, CompressionParams};
use matrox::linalg::relative_error;
use matrox::points::dense_kernel_matmul;
use matrox::sampling::sample_nodes;
use matrox::tree::{ClusterTree, HTree};
use matrox::{
    generate, inspector, inspector_p1, inspector_p2, DatasetId, ExecOptions, Kernel, MatRoxParams,
    Matrix, Structure,
};
use rand::SeedableRng;

fn rhs(n: usize, q: usize, seed: u64) -> Matrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Matrix::random_uniform(n, q, &mut rng)
}

#[test]
fn hmatrix_matches_dense_product_on_all_structures() {
    let n = 1024;
    let points = generate(DatasetId::Grid, n, 0);
    let kernel = Kernel::Gaussian { bandwidth: 1.0 };
    let w = rhs(n, 8, 1);
    let exact = dense_kernel_matmul(&points, &kernel, &w);
    for structure in [
        Structure::Hss,
        Structure::h2b(),
        Structure::Geometric { tau: 0.65 },
    ] {
        let params = MatRoxParams {
            structure,
            bacc: 1e-6,
            ..MatRoxParams::default()
        }
        .with_leaf_size(64);
        let h = inspector(&points, &kernel, &params).expect("inspector");
        let y = h.matmul(&w).expect("matmul");
        let err = relative_error(&y, &exact);
        assert!(err < 5e-2, "{} structure: error {err}", structure.name());
    }
}

#[test]
fn all_evaluation_strategies_agree_exactly() {
    // Same compression -> every evaluator must produce the same Y, bit-for-bit
    // up to floating-point associativity.
    let n = 1024;
    let points = generate(DatasetId::Unit, n, 3);
    let kernel = Kernel::smash_default();
    let params = MatRoxParams::smash_setting().with_leaf_size(64);
    let tree = ClusterTree::build(&points, params.partition, params.leaf_size, params.seed);
    let htree = HTree::build(&tree, params.structure);
    let sampling = sample_nodes(&points, &tree, &kernel, &params.sampling);
    let c = compress(
        &points,
        &tree,
        &htree,
        &kernel,
        &sampling,
        &CompressionParams {
            bacc: 1e-6,
            max_rank: 256,
            grain: 0,
        },
    );
    let w = rhs(n, 4, 2);
    let y_ref = reference_evaluate(&c, &tree, &htree, &w);

    // MatRox executor through the public API.
    let p1 = inspector_p1(&points, &kernel, &params).expect("inspector p1");
    let h = inspector_p2(&points, &p1, &kernel, 1e-6).expect("inspector p2");
    // Note: p1/p2 rebuild compression internally with the same inputs, so the
    // result must agree with the reference built above to the compression
    // accuracy (not bit-exactly, because sampling RNG streams are identical
    // but rayon summation order differs).
    let y_matrox = h.matmul(&w).expect("matmul");
    assert!(relative_error(&y_matrox, &y_ref) < 1e-10);

    // Baselines over the same compression object.
    let gofmm = GofmmEvaluator::new(&tree, &htree, &c);
    assert!(relative_error(&gofmm.evaluate(&w), &y_ref) < 1e-12);
    assert!(relative_error(&gofmm.evaluate_sequential(&w), &y_ref) < 1e-12);

    let smash = SmashEvaluator::new(&tree, &htree, &c, points.dim()).unwrap();
    let wv: Vec<f64> = (0..n).map(|i| w.get(i, 0)).collect();
    let y_smash = smash.evaluate(&wv);
    let w1 = Matrix::from_vec(n, 1, wv);
    let y_ref1 = reference_evaluate(&c, &tree, &htree, &w1);
    let err: f64 = y_smash
        .iter()
        .enumerate()
        .map(|(i, v)| (v - y_ref1.get(i, 0)).powi(2))
        .sum::<f64>()
        .sqrt();
    assert!(err < 1e-10 * (1.0 + matrox::linalg::frobenius_norm(&y_ref1)));
}

#[test]
fn strumpack_baseline_agrees_on_hss() {
    let n = 1024;
    let points = generate(DatasetId::Sunflower, n, 4);
    let kernel = Kernel::Gaussian { bandwidth: 1.0 };
    let params = MatRoxParams::hss().with_leaf_size(64);
    let tree = ClusterTree::build(&points, params.partition, params.leaf_size, params.seed);
    let htree = HTree::build(&tree, Structure::Hss);
    let sampling = sample_nodes(&points, &tree, &kernel, &params.sampling);
    let c = compress(
        &points,
        &tree,
        &htree,
        &kernel,
        &sampling,
        &CompressionParams {
            bacc: 1e-6,
            max_rank: 256,
            grain: 0,
        },
    );
    let w = rhs(n, 3, 5);
    let y_ref = reference_evaluate(&c, &tree, &htree, &w);
    let strumpack = StrumpackEvaluator::new(&tree, &htree, &c).unwrap();
    assert!(relative_error(&strumpack.evaluate(&w), &y_ref) < 1e-12);
}

#[test]
fn executor_ablations_are_numerically_identical_through_public_api() {
    let n = 1024;
    let points = generate(DatasetId::Higgs, n, 1);
    let kernel = Kernel::Gaussian { bandwidth: 5.0 };
    let h =
        inspector(&points, &kernel, &MatRoxParams::h2b().with_leaf_size(64)).expect("inspector");
    let w = rhs(n, 4, 7);
    let seq = h
        .matmul_with(&w, &ExecOptions::sequential())
        .expect("matmul");
    let full = h.matmul_with(&w, &ExecOptions::full()).expect("matmul");
    let plan = h.matmul(&w).expect("matmul");
    assert!(relative_error(&full, &seq) < 1e-12);
    assert!(relative_error(&plan, &seq) < 1e-12);
}

#[test]
fn compression_ratio_exceeds_one_at_moderate_size() {
    let n = 4096;
    let points = generate(DatasetId::Grid, n, 2);
    let kernel = Kernel::Gaussian { bandwidth: 5.0 };
    let h = inspector(&points, &kernel, &MatRoxParams::hss()).expect("inspector");
    assert!(
        h.compression_ratio() > 2.0,
        "compression ratio {} too small at N = {n}",
        h.compression_ratio()
    );
}

#[test]
fn serialization_roundtrip_through_facade() {
    let n = 512;
    let points = generate(DatasetId::Pen, n, 9);
    let kernel = Kernel::Gaussian { bandwidth: 5.0 };
    let h =
        inspector(&points, &kernel, &MatRoxParams::h2b().with_leaf_size(32)).expect("inspector");
    let bytes = matrox::core::to_bytes(&h);
    let h2 = matrox::core::from_bytes(bytes).unwrap();
    let w = rhs(n, 2, 11);
    assert!(
        relative_error(
            &h2.matmul(&w).expect("matmul"),
            &h.matmul(&w).expect("matmul")
        ) < 1e-14
    );
}

#[test]
fn inspector_reuse_changes_accuracy_without_p1() {
    let n = 1024;
    let points = generate(DatasetId::Dino, n, 6);
    let kernel = Kernel::smash_default();
    let params = MatRoxParams::smash_setting().with_leaf_size(64);
    let p1 = inspector_p1(&points, &kernel, &params).expect("inspector p1");
    let w = rhs(n, 4, 13);
    let exact = dense_kernel_matmul(&points, &kernel, &w);
    let mut errors = Vec::new();
    for bacc in [1e-2, 1e-5] {
        let h = inspector_p2(&points, &p1, &kernel, bacc).expect("inspector p2");
        errors.push(relative_error(&h.matmul(&w).expect("matmul"), &exact));
    }
    assert!(
        errors[1] <= errors[0],
        "tighter bacc must not be less accurate: {errors:?}"
    );
}

#[test]
fn q_column_counts_from_one_to_many_work() {
    let n = 512;
    let points = generate(DatasetId::Random, n, 8);
    let kernel = Kernel::Gaussian { bandwidth: 1.0 };
    let h =
        inspector(&points, &kernel, &MatRoxParams::h2b().with_leaf_size(32)).expect("inspector");
    for q in [1usize, 3, 17, 64] {
        let w = rhs(n, q, q as u64);
        let y = h.matmul(&w).expect("matmul");
        assert_eq!(y.shape(), (n, q));
    }
    // matvec helper agrees with Q = 1 matmul
    let w = rhs(n, 1, 99);
    let y1 = h.matmul(&w).expect("matmul");
    let yv = h.matvec(w.as_slice()).expect("matvec");
    assert_eq!(yv.len(), n);
    for (i, &yvi) in yv.iter().enumerate() {
        assert!((y1.get(i, 0) - yvi).abs() < 1e-12);
    }
}

#[test]
fn dense_baseline_matches_hmatrix_within_accuracy() {
    let n = 768;
    let points = generate(DatasetId::Hepmass, n, 12);
    let kernel = Kernel::Gaussian { bandwidth: 5.0 };
    let h = inspector(
        &points,
        &kernel,
        &MatRoxParams::h2b().with_bacc(1e-7).with_leaf_size(64),
    )
    .expect("inspector");
    let dense = DenseBaseline::new(&points, kernel);
    let w = rhs(n, 4, 17);
    let err = relative_error(
        &h.matmul(&w).expect("matmul"),
        &dense.evaluate_assembled(&w),
    );
    assert!(err < 1e-2, "error vs dense {err}");
}
