//! Strong-scaling sweep of the MatRox executor (Figure 7 style).
//!
//! Runs the same HMatrix-matrix multiplication on 1, 2, 4, ... threads using
//! dedicated rayon pools and reports the speedup over the single-thread run,
//! alongside the GOFMM-style baseline for comparison.
//!
//! ```bash
//! cargo run --release --example scalability [dataset] [n] [q]
//! ```

use matrox::baselines::GofmmEvaluator;
use matrox::compress::{compress, CompressionParams};
use matrox::sampling::{sample_nodes, SamplingParams};
use matrox::tree::{ClusterTree, HTree};
use matrox::{generate, inspector, DatasetId, ExecOptions, Kernel, MatRoxParams, Matrix};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset = args
        .get(1)
        .and_then(|s| DatasetId::from_name(s))
        .unwrap_or(DatasetId::Covtype);
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4096);
    let q: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(256);

    let points = generate(dataset, n, 0);
    let kernel = Kernel::Gaussian { bandwidth: 5.0 };
    let max_threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4);

    println!(
        "strong scaling on {} (N = {n}, d = {}, Q = {q}), up to {max_threads} threads",
        dataset.name(),
        points.dim()
    );
    // Measured self-check (observed pool width + 1-vs-N timing of a
    // trivially parallel region) so the header shows what the pool actually
    // delivers on this host instead of assuming it.
    println!(
        "{}\n",
        matrox_bench::pool_self_check()
            .expect("pool self-check")
            .report()
    );

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
    let w = Matrix::random_uniform(n, q, &mut rng);

    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= max_threads {
        threads.push(threads.last().unwrap() * 2);
    }
    if *threads.last().unwrap() != max_threads {
        threads.push(max_threads);
    }

    println!(
        "{:>8}  {:>12}  {:>10}  {:>12}  {:>10}",
        "threads", "MatRox (s)", "speedup", "GOFMM (s)", "speedup"
    );
    let mut matrox_t1 = 0.0;
    let mut gofmm_t1 = 0.0;
    for &nt in &threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(nt)
            .build()
            .unwrap();
        let (t_matrox, t_gofmm) = pool.install(|| {
            // Inspector inside the pool so `p` matches the thread count.
            let params = MatRoxParams::h2b().with_partitions(nt);
            let h = inspector(&points, &kernel, &params).expect("inspector");
            let opts = if nt == 1 {
                ExecOptions::sequential()
            } else {
                ExecOptions::from_plan(&h.plan)
            };
            let t0 = Instant::now();
            let _ = h.matmul_with(&w, &opts).expect("matmul");
            let t_matrox = t0.elapsed().as_secs_f64();

            let tree = ClusterTree::build(&points, params.partition, params.leaf_size, params.seed);
            let htree = HTree::build(&tree, params.structure);
            let sampling = sample_nodes(&points, &tree, &kernel, &SamplingParams::default());
            let c = compress(
                &points,
                &tree,
                &htree,
                &kernel,
                &sampling,
                &CompressionParams {
                    bacc: params.bacc,
                    max_rank: params.max_rank,
                    grain: 0,
                },
            );
            let gofmm = GofmmEvaluator::new(&tree, &htree, &c);
            let t0 = Instant::now();
            let _ = if nt == 1 {
                gofmm.evaluate_sequential(&w)
            } else {
                gofmm.evaluate(&w)
            };
            (t_matrox, t0.elapsed().as_secs_f64())
        });
        if nt == 1 {
            matrox_t1 = t_matrox;
            gofmm_t1 = t_gofmm;
        }
        println!(
            "{nt:>8}  {t_matrox:>12.3}  {:>10.2}  {t_gofmm:>12.3}  {:>10.2}",
            matrox_t1 / t_matrox,
            gofmm_t1 / t_gofmm
        );
    }
}
