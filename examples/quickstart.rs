//! Quickstart: compress a kernel matrix and multiply it with a dense matrix.
//!
//! This mirrors the user code of Figure 2 in the paper: declare the inputs
//! (points, admissibility, kernel, accuracy), run the inspector to obtain the
//! HMatrix and the generated evaluation code, then run the executor.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use matrox::{generate, inspector, DatasetId, Kernel, MatRoxParams, Matrix};
use std::time::Instant;

fn main() {
    // ---- inputs (Figure 2, inspector side) --------------------------------
    let n = 4096;
    let points = generate(DatasetId::Covtype, n, 0);
    let kernel = Kernel::Gaussian { bandwidth: 5.0 };
    let params = MatRoxParams::h2b() // GOFMM budget 0.03 structure ("H2-b")
        .with_bacc(1e-5)
        .with_leaf_size(64);

    println!("dataset: covtype-like, N = {n}, d = {}", points.dim());
    println!(
        "structure: {}, bacc = {:.0e}",
        params.structure.name(),
        params.bacc
    );

    // ---- inspector: compression + structure analysis + code generation ----
    let t0 = Instant::now();
    let h = inspector(&points, &kernel, &params).expect("inspector");
    let inspect_time = t0.elapsed();
    let t = &h.timings;
    println!("\ninspector: {:.3} s", inspect_time.as_secs_f64());
    println!(
        "  compression        {:.3} s",
        t.compression().as_secs_f64()
    );
    println!(
        "  structure analysis {:.3} s",
        t.structure_analysis().as_secs_f64()
    );
    println!("  code generation    {:.3} s", t.codegen.as_secs_f64());
    println!(
        "  compression ratio  {:.1}x vs dense",
        h.compression_ratio()
    );

    // The generated specialized code (the `matmul.h` artifact).
    let out = std::env::temp_dir().join("matrox_quickstart_matmul.rs");
    h.write_generated_code(&out).expect("write generated code");
    println!("  generated code     -> {}", out.display());

    // ---- executor: Y = K~ * W ---------------------------------------------
    let q = 256;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let w = Matrix::random_uniform(n, q, &mut rng);
    let t0 = Instant::now();
    let y = h.matmul(&w).expect("matmul");
    let eval_time = t0.elapsed();
    let gflops = h.flops(q) as f64 / eval_time.as_secs_f64() / 1e9;
    println!(
        "\nexecutor: Q = {q}, {:.3} s ({gflops:.1} GFLOP/s)",
        eval_time.as_secs_f64()
    );
    println!("  Y shape = {:?}", y.shape());

    // ---- accuracy check against the exact product -------------------------
    let wq = Matrix::random_uniform(n, 8, &mut rng);
    let acc = h.overall_accuracy(&points, &wq).expect("accuracy probe");
    println!(
        "\noverall accuracy eps_f = {acc:.2e} (bacc = {:.0e})",
        h.bacc
    );
}
