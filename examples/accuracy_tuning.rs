//! Accuracy tuning with inspector reuse (Section 5 / Figure 8 of the paper).
//!
//! In practice the block accuracy `bacc` has to be retuned because the
//! overall accuracy of the HMatrix-matrix product is only loosely bounded by
//! it.  Libraries re-run the whole compression for every new `bacc`; MatRox
//! re-runs only inspector-p2 (low-rank approximation, coarsening, CDS) and
//! reuses inspector-p1 (tree, interactions, sampling, blocking).
//!
//! ```bash
//! cargo run --release --example accuracy_tuning
//! ```

use matrox::{
    generate, inspector, inspector_p1, inspector_p2, DatasetId, Kernel, MatRoxParams, Matrix,
};
use std::time::Instant;

fn main() {
    let n = 2048;
    let points = generate(DatasetId::Letter, n, 3);
    let kernel = Kernel::Gaussian { bandwidth: 5.0 };
    let params = MatRoxParams::h2b().with_leaf_size(64);
    let baccs = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5];

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let w = Matrix::random_uniform(n, 16, &mut rng);

    println!("accuracy tuning over bacc = {baccs:?} on letter-like data (N = {n})\n");

    // ---- MatRox with reuse: p1 once, p2 per accuracy -----------------------
    let t0 = Instant::now();
    let p1 = inspector_p1(&points, &kernel, &params).expect("inspector p1");
    let p1_time = t0.elapsed();
    let mut reuse_total = p1_time;
    println!("inspector-p1 (reusable): {:.3} s", p1_time.as_secs_f64());
    println!(
        "{:>8}  {:>12}  {:>12}  {:>10}",
        "bacc", "p2 time (s)", "eval (s)", "eps_f"
    );
    for &bacc in &baccs {
        let t0 = Instant::now();
        let h = inspector_p2(&points, &p1, &kernel, bacc).expect("inspector p2");
        let p2_time = t0.elapsed();
        let t0 = Instant::now();
        let _y = h.matmul(&w).expect("matmul");
        let eval_time = t0.elapsed();
        reuse_total += p2_time + eval_time;
        let acc = h.overall_accuracy(&points, &w).expect("accuracy probe");
        println!(
            "{bacc:>8.0e}  {:>12.3}  {:>12.3}  {acc:>10.2e}",
            p2_time.as_secs_f64(),
            eval_time.as_secs_f64()
        );
    }

    // ---- library behaviour: full re-inspection per accuracy ----------------
    let t0 = Instant::now();
    for &bacc in &baccs {
        let h = inspector(&points, &kernel, &params.with_bacc(bacc)).expect("inspector");
        let _y = h.matmul(&w).expect("matmul");
    }
    let full_total = t0.elapsed();

    println!(
        "\ntotal with inspector-p1 reuse : {:.3} s",
        reuse_total.as_secs_f64()
    );
    println!(
        "total with full re-inspection : {:.3} s",
        full_total.as_secs_f64()
    );
    println!(
        "reuse speedup over {} accuracy changes: {:.2}x",
        baccs.len(),
        full_total.as_secs_f64() / reuse_total.as_secs_f64()
    );
}
