//! Compare the MatRox executor against the GOFMM-, STRUMPACK- and
//! SMASH-style baselines on one dataset.
//!
//! All evaluators run over the same compression output and the same GEMM
//! kernels, so the differences come from data layout (CDS vs tree-based),
//! loop structure (blocked/coarsened vs reduction/level-by-level) and
//! scheduling — the effects the paper's Figure 5 isolates.
//!
//! ```bash
//! cargo run --release --example compare_baselines [dataset] [n] [q]
//! ```

use matrox::baselines::{DenseBaseline, GofmmEvaluator, SmashEvaluator, StrumpackEvaluator};
use matrox::compress::{compress, CompressionParams};
use matrox::linalg::relative_error;
use matrox::sampling::{sample_nodes, SamplingParams};
use matrox::tree::{ClusterTree, HTree};
use matrox::{generate, inspector, DatasetId, Kernel, MatRoxParams, Matrix, Structure};
use std::time::Instant;

fn time<F: FnMut() -> Matrix>(mut f: F, reps: usize) -> (Matrix, f64) {
    let mut best = f64::INFINITY;
    let mut out = f();
    for _ in 0..reps {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (out, best)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset = args
        .get(1)
        .and_then(|s| DatasetId::from_name(s))
        .unwrap_or(DatasetId::Grid);
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4096);
    let q: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(512);

    let points = generate(dataset, n, 0);
    let kernel = if dataset.is_scientific() {
        Kernel::smash_default()
    } else {
        Kernel::Gaussian { bandwidth: 5.0 }
    };
    let structure = Structure::h2b();
    println!(
        "dataset = {} (N = {n}, d = {}), structure = {}, Q = {q}\n",
        dataset.name(),
        points.dim(),
        structure.name()
    );

    // MatRox pipeline.
    let params = MatRoxParams {
        structure,
        ..MatRoxParams::default()
    };
    let h = inspector(&points, &kernel, &params).expect("inspector");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let w = Matrix::random_uniform(n, q, &mut rng);
    let (y_matrox, t_matrox) = time(|| h.matmul(&w).expect("matmul"), 2);
    let gflops = |secs: f64| h.flops(q) as f64 / secs / 1e9;
    println!(
        "{:<28} {:>9.3} s  {:>8.1} GFLOP/s",
        "MatRox (CDS + generated code)",
        t_matrox,
        gflops(t_matrox)
    );

    // Shared compression for the baselines (tree-based storage).
    let tree = ClusterTree::build(&points, params.partition, params.leaf_size, params.seed);
    let htree = HTree::build(&tree, structure);
    let sampling = sample_nodes(&points, &tree, &kernel, &SamplingParams::default());
    let c = compress(
        &points,
        &tree,
        &htree,
        &kernel,
        &sampling,
        &CompressionParams {
            bacc: params.bacc,
            max_rank: params.max_rank,
            grain: 0,
        },
    );

    let gofmm = GofmmEvaluator::new(&tree, &htree, &c);
    let (y_gofmm, t_gofmm) = time(|| gofmm.evaluate(&w), 2);
    println!(
        "{:<28} {:>9.3} s  {:>8.1} GFLOP/s   (MatRox speedup {:.2}x)",
        "GOFMM-style (TB + DS)",
        t_gofmm,
        gflops(t_gofmm),
        t_gofmm / t_matrox
    );
    println!(
        "  agreement with MatRox: {:.2e}",
        relative_error(&y_gofmm, &y_matrox)
    );

    // STRUMPACK only supports HSS; build a second, HSS compression for it.
    let htree_hss = HTree::build(&tree, Structure::Hss);
    let c_hss = compress(
        &points,
        &tree,
        &htree_hss,
        &kernel,
        &sampling,
        &CompressionParams {
            bacc: params.bacc,
            max_rank: params.max_rank,
            grain: 0,
        },
    );
    let strumpack = StrumpackEvaluator::new(&tree, &htree_hss, &c_hss).expect("HSS");
    let (_y_s, t_strumpack) = time(|| strumpack.evaluate(&w), 2);
    println!(
        "{:<28} {:>9.3} s   (HSS structure; level-by-level with barriers)",
        "STRUMPACK-style (TB + DS)", t_strumpack
    );

    // SMASH: matvec only, low dimensions only.
    match SmashEvaluator::new(&tree, &htree, &c, points.dim()) {
        Ok(smash) => {
            let wv: Vec<f64> = (0..n).map(|i| w.get(i, 0)).collect();
            let t0 = Instant::now();
            let _y = smash.evaluate(&wv);
            println!(
                "{:<28} {:>9.3} s   (matrix-vector only, Q = 1)",
                "SMASH-style (level-by-level)",
                t0.elapsed().as_secs_f64()
            );
        }
        Err(e) => println!("{:<28} skipped: {e}", "SMASH-style (level-by-level)"),
    }

    // Dense GEMM comparator (implicit K, parallel).
    let dense = DenseBaseline::new(&points, kernel);
    let t0 = Instant::now();
    let y_dense = dense.evaluate_implicit(&w);
    let t_dense = t0.elapsed().as_secs_f64();
    println!(
        "{:<28} {:>9.3} s   (un-approximated, MatRox speedup {:.1}x)",
        "dense GEMM (K * W)",
        t_dense,
        t_dense / t_matrox
    );
    println!(
        "\noverall accuracy of MatRox vs dense product: {:.2e}",
        relative_error(&y_matrox, &y_dense)
    );
}
