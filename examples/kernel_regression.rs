//! Gaussian kernel ridge regression accelerated with an HMatrix.
//!
//! The paper motivates HMatrix-matrix products with kernel methods such as
//! Gaussian ridge regression, where the kernel matrix appears inside an
//! iterative solver.  This example fits ridge-regression weights with
//! conjugate gradient (CG) on the regularized system `(K + λI) α = b`,
//! using the compressed HMatrix for every matrix product, and compares the
//! result against CG with exact (dense) products.
//!
//! ```bash
//! cargo run --release --example kernel_regression
//! ```

use matrox::points::dense_kernel_matmul;
use matrox::{generate, inspector, DatasetId, Kernel, MatRoxParams, Matrix};
use std::time::Instant;

/// One conjugate-gradient solve of `(K + lambda I) x = b`, where `apply`
/// computes `K * v`.
fn cg_solve<F: FnMut(&[f64]) -> Vec<f64>>(
    mut apply: F,
    b: &[f64],
    lambda: f64,
    iters: usize,
) -> Vec<f64> {
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    for _ in 0..iters {
        let mut ap = apply(&p);
        for i in 0..n {
            ap[i] += lambda * p[i];
        }
        let denom: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if denom.abs() < 1e-300 {
            break;
        }
        let alpha = rs_old / denom;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        if rs_new.sqrt() < 1e-10 {
            break;
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    x
}

fn main() {
    let n = 2048;
    let points = generate(DatasetId::Susy, n, 7);
    let kernel = Kernel::Gaussian { bandwidth: 3.0 };
    let lambda = 1e-2;

    // Synthetic regression targets: a smooth function of the first
    // coordinates plus noise.
    let targets: Vec<f64> = (0..n)
        .map(|i| {
            let p = points.point(i);
            (p[0] * 0.8 + p[1] * 0.3).sin() + 0.05 * ((i * 2654435761) % 1000) as f64 / 1000.0
        })
        .collect();

    println!(
        "kernel ridge regression: N = {n}, d = {}, lambda = {lambda}",
        points.dim()
    );

    // ---- compress once, evaluate many times -------------------------------
    let params = MatRoxParams::h2b().with_bacc(1e-6).with_leaf_size(64);
    let t0 = Instant::now();
    let h = inspector(&points, &kernel, &params).expect("inspector");
    println!("inspector: {:.3} s", t0.elapsed().as_secs_f64());

    let cg_iters = 30;
    let t0 = Instant::now();
    let alpha_h = cg_solve(|v| h.matvec(v).expect("matvec"), &targets, lambda, cg_iters);
    let hmatrix_time = t0.elapsed();
    println!(
        "CG with HMatrix products: {:.3} s ({cg_iters} iterations)",
        hmatrix_time.as_secs_f64()
    );

    // ---- same solve with exact dense products ------------------------------
    let t0 = Instant::now();
    let alpha_exact = cg_solve(
        |v| {
            let vm = Matrix::from_vec(n, 1, v.to_vec());
            dense_kernel_matmul(&points, &kernel, &vm).into_vec()
        },
        &targets,
        lambda,
        cg_iters,
    );
    let dense_time = t0.elapsed();
    println!(
        "CG with dense products:   {:.3} s",
        dense_time.as_secs_f64()
    );
    println!(
        "speedup: {:.2}x",
        dense_time.as_secs_f64() / hmatrix_time.as_secs_f64()
    );

    // ---- compare the fitted weights ---------------------------------------
    let diff: f64 = alpha_h
        .iter()
        .zip(&alpha_exact)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let base: f64 = alpha_exact.iter().map(|a| a * a).sum::<f64>().sqrt();
    println!(
        "relative difference between weight vectors: {:.2e}",
        diff / base
    );

    // ---- training error with the HMatrix weights --------------------------
    let pred = h.matvec(&alpha_h).expect("matvec");
    let mse: f64 = pred
        .iter()
        .zip(&targets)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / n as f64;
    println!("training MSE with HMatrix weights: {mse:.4}");
}
